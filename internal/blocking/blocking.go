// Package blocking generates the candidate instance pairs of a two-table ER
// task and scores them with weighted attribute similarity, reproducing the
// paper's setup (§VIII-A): "we use the blocking technique to filter the
// instance pairs unlikely to match", keeping pairs whose aggregated
// similarity exceeds a dataset-specific threshold.
//
// Two candidate generators are provided: an exhaustive cross product for
// small tables, and a token-index generator (pairs sharing at least k tokens
// of a key attribute) for larger ones. A sorted-neighbourhood generator is
// included for completeness.
package blocking

import (
	"errors"
	"fmt"
	"sort"

	"humo/internal/records"
	"humo/internal/similarity"
)

// ErrBadSpec reports an invalid scoring or blocking specification.
var ErrBadSpec = errors.New("blocking: invalid specification")

// Kind selects the per-attribute similarity measure.
type Kind int

// Supported attribute similarity kinds.
const (
	KindJaccard Kind = iota // token-set Jaccard (pre-tokenized, fast path)
	KindJaroWinkler
	KindLevenshtein
	KindCosine
)

func (k Kind) String() string {
	switch k {
	case KindJaccard:
		return "jaccard"
	case KindJaroWinkler:
		return "jarowinkler"
	case KindLevenshtein:
		return "levenshtein"
	case KindCosine:
		return "cosine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AttributeSpec maps one attribute of both tables to a similarity measure
// and an aggregation weight.
type AttributeSpec struct {
	Attribute string
	Kind      Kind
	Weight    float64
}

// Pair is a scored candidate pair, referring to record positions in the two
// tables.
type Pair struct {
	A, B int     // record indices in table A and table B
	Sim  float64 // aggregated weighted similarity
}

// Scorer computes aggregated similarities between records of two fixed
// tables. Token sets of Jaccard attributes are precomputed once so scoring
// millions of candidates stays cheap.
type Scorer struct {
	ta, tb  *records.Table
	specs   []AttributeSpec
	weights []float64 // normalized
	colA    []int     // attribute index in table A per spec
	colB    []int
	tokA    []map[int]map[string]struct{} // per spec (Jaccard/Cosine): record -> token set
	tokB    []map[int]map[string]struct{}
}

// NewScorer validates the specs against both tables and precomputes token
// sets. Weights must be non-negative with positive sum; they are normalized.
func NewScorer(ta, tb *records.Table, specs []AttributeSpec) (*Scorer, error) {
	if err := ta.Validate(); err != nil {
		return nil, err
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no attribute specs", ErrBadSpec)
	}
	s := &Scorer{
		ta: ta, tb: tb, specs: append([]AttributeSpec(nil), specs...),
		weights: make([]float64, len(specs)),
		colA:    make([]int, len(specs)),
		colB:    make([]int, len(specs)),
		tokA:    make([]map[int]map[string]struct{}, len(specs)),
		tokB:    make([]map[int]map[string]struct{}, len(specs)),
	}
	var sum float64
	for i, spec := range specs {
		if spec.Weight < 0 {
			return nil, fmt.Errorf("%w: attribute %q has negative weight", ErrBadSpec, spec.Attribute)
		}
		sum += spec.Weight
		var err error
		if s.colA[i], err = ta.AttributeIndex(spec.Attribute); err != nil {
			return nil, err
		}
		if s.colB[i], err = tb.AttributeIndex(spec.Attribute); err != nil {
			return nil, err
		}
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadSpec, sum)
	}
	for i, spec := range specs {
		s.weights[i] = spec.Weight / sum
		if spec.Kind == KindJaccard {
			s.tokA[i] = tokenizeColumn(ta, s.colA[i])
			s.tokB[i] = tokenizeColumn(tb, s.colB[i])
		}
	}
	return s, nil
}

func tokenizeColumn(t *records.Table, col int) map[int]map[string]struct{} {
	out := make(map[int]map[string]struct{}, len(t.Records))
	for i, r := range t.Records {
		out[i] = similarity.TokenSet(r.Values[col])
	}
	return out
}

// Tables returns the scored tables.
func (s *Scorer) Tables() (a, b *records.Table) { return s.ta, s.tb }

// Score returns the aggregated weighted similarity of record i of table A
// against record j of table B.
func (s *Scorer) Score(i, j int) float64 {
	var sum float64
	for k := range s.specs {
		sum += s.weights[k] * s.attrSim(k, i, j)
	}
	return sum
}

// Features returns the per-attribute similarity vector, the SVM feature
// representation of the pair.
func (s *Scorer) Features(i, j int) []float64 {
	out := make([]float64, len(s.specs))
	for k := range s.specs {
		out[k] = s.attrSim(k, i, j)
	}
	return out
}

func (s *Scorer) attrSim(k, i, j int) float64 {
	switch s.specs[k].Kind {
	case KindJaccard:
		return similarity.JaccardSets(s.tokA[k][i], s.tokB[k][j])
	case KindJaroWinkler:
		return similarity.JaroWinkler(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
	case KindLevenshtein:
		return similarity.LevenshteinSim(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
	case KindCosine:
		return similarity.Cosine(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
	default:
		panic(fmt.Sprintf("blocking: unknown kind %v", s.specs[k].Kind))
	}
}

// CrossProduct scores every record pair and keeps those with aggregated
// similarity >= threshold. Suitable for tables up to a few thousand records
// each.
func CrossProduct(s *Scorer, threshold float64) []Pair {
	var out []Pair
	for i := range s.ta.Records {
		for j := range s.tb.Records {
			if sim := s.Score(i, j); sim >= threshold {
				out = append(out, Pair{A: i, B: j, Sim: sim})
			}
		}
	}
	return out
}

// TokenBlocked generates candidates via an inverted token index on the named
// attribute: pairs sharing at least minShared tokens are scored, and those
// at or above the similarity threshold are kept. It never produces
// duplicates.
func TokenBlocked(s *Scorer, attribute string, minShared int, threshold float64) ([]Pair, error) {
	if minShared < 1 {
		return nil, fmt.Errorf("%w: minShared=%d must be >= 1", ErrBadSpec, minShared)
	}
	colA, err := s.ta.AttributeIndex(attribute)
	if err != nil {
		return nil, err
	}
	colB, err := s.tb.AttributeIndex(attribute)
	if err != nil {
		return nil, err
	}
	// Inverted index over table B tokens.
	index := make(map[string][]int)
	for j, r := range s.tb.Records {
		for tok := range similarity.TokenSet(r.Values[colB]) {
			index[tok] = append(index[tok], j)
		}
	}
	var out []Pair
	shared := make(map[int]int)
	for i, r := range s.ta.Records {
		clear(shared)
		for tok := range similarity.TokenSet(r.Values[colA]) {
			for _, j := range index[tok] {
				shared[j]++
			}
		}
		for j, cnt := range shared {
			if cnt < minShared {
				continue
			}
			if sim := s.Score(i, j); sim >= threshold {
				out = append(out, Pair{A: i, B: j, Sim: sim})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out, nil
}

// SortedNeighborhood slides a window of the given size over the union of
// both tables sorted by the named attribute and scores pairs that fall into
// a common window, keeping those at or above the threshold. A classical
// alternative to token blocking, provided for workloads with sortable keys.
func SortedNeighborhood(s *Scorer, attribute string, window int, threshold float64) ([]Pair, error) {
	if window < 2 {
		return nil, fmt.Errorf("%w: window=%d must be >= 2", ErrBadSpec, window)
	}
	colA, err := s.ta.AttributeIndex(attribute)
	if err != nil {
		return nil, err
	}
	colB, err := s.tb.AttributeIndex(attribute)
	if err != nil {
		return nil, err
	}
	type entry struct {
		key   string
		table int // 0 = A, 1 = B
		idx   int
	}
	entries := make([]entry, 0, len(s.ta.Records)+len(s.tb.Records))
	for i, r := range s.ta.Records {
		entries = append(entries, entry{key: r.Values[colA], table: 0, idx: i})
	}
	for j, r := range s.tb.Records {
		entries = append(entries, entry{key: r.Values[colB], table: 1, idx: j})
	}
	sort.Slice(entries, func(x, y int) bool {
		if entries[x].key != entries[y].key {
			return entries[x].key < entries[y].key
		}
		if entries[x].table != entries[y].table {
			return entries[x].table < entries[y].table
		}
		return entries[x].idx < entries[y].idx
	})
	seen := make(map[[2]int]struct{})
	var out []Pair
	for x := range entries {
		hi := x + window
		if hi > len(entries) {
			hi = len(entries)
		}
		for y := x + 1; y < hi; y++ {
			a, b := entries[x], entries[y]
			if a.table == b.table {
				continue
			}
			if a.table == 1 {
				a, b = b, a
			}
			key := [2]int{a.idx, b.idx}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if sim := s.Score(a.idx, b.idx); sim >= threshold {
				out = append(out, Pair{A: a.idx, B: b.idx, Sim: sim})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out, nil
}

// DistinctValueSpecs fills in the Weight of each spec from the number of
// distinct values of the attribute across both tables, the paper's
// weighting rule (§VIII-A).
func DistinctValueSpecs(ta, tb *records.Table, specs []AttributeSpec) ([]AttributeSpec, error) {
	out := append([]AttributeSpec(nil), specs...)
	for i, spec := range specs {
		ca, err := ta.AttributeIndex(spec.Attribute)
		if err != nil {
			return nil, err
		}
		cb, err := tb.AttributeIndex(spec.Attribute)
		if err != nil {
			return nil, err
		}
		distinct := make(map[string]struct{})
		for _, v := range ta.Column(ca) {
			distinct[v] = struct{}{}
		}
		for _, v := range tb.Column(cb) {
			distinct[v] = struct{}{}
		}
		out[i].Weight = float64(len(distinct))
	}
	return out, nil
}
