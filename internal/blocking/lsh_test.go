package blocking

import (
	"context"
	"errors"
	"sync"
	"testing"

	"humo/internal/records"
)

// lshPairs runs ModeLSH with the given knobs over a scorer.
func lshPairs(t *testing.T, s *Scorer, attribute string, rows, bands int, threshold float64, workers int) []Pair {
	t.Helper()
	got, err := Generate(context.Background(), s, Options{
		Mode: ModeLSH, Attribute: attribute, Rows: rows, Bands: bands,
		Threshold: threshold, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestLSHValidation: bad row/band counts are ErrBadSpec, and a missing
// blocking attribute surfaces the table's error.
func TestLSHValidation(t *testing.T) {
	ta, tb := synthTables(20, 20, 21)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Options{
		{Mode: ModeLSH, Attribute: "name", Rows: 0, Bands: 8},
		{Mode: ModeLSH, Attribute: "name", Rows: -1, Bands: 8},
		{Mode: ModeLSH, Attribute: "name", Rows: 2, Bands: 0},
		{Mode: ModeLSH, Attribute: "name", Rows: 2, Bands: -3},
		{Mode: ModeLSH, Attribute: "name", Rows: 64, Bands: 65}, // over the 4096 cap
	} {
		if _, err := Generate(context.Background(), s, bad); !errors.Is(err, ErrBadSpec) {
			t.Errorf("rows=%d bands=%d: err = %v, want ErrBadSpec", bad.Rows, bad.Bands, err)
		}
	}
	if _, err := LSHBlocked(s, "missing", 2, 8, 0); !errors.Is(err, records.ErrBadTable) {
		t.Errorf("missing attribute: err = %v, want ErrBadTable", err)
	}
	if _, err := ParseMode("lsh"); err != nil {
		t.Errorf("ParseMode(lsh): %v", err)
	}
}

// TestLSHSubsetOfCross: every LSH candidate appears in the cross product
// with a bit-identical similarity — LSH only prunes, never rescores.
func TestLSHSubsetOfCross(t *testing.T) {
	ta, tb := synthTables(150, 200, 22)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	cross := CrossProduct(s, 0.3)
	inCross := make(map[[2]int]float64, len(cross))
	for _, p := range cross {
		inCross[[2]int{p.A, p.B}] = p.Sim
	}
	got := lshPairs(t, s, "name", 2, 16, 0.3, 0)
	if len(got) == 0 {
		t.Fatal("no LSH candidates")
	}
	for _, p := range got {
		if sim, ok := inCross[[2]int{p.A, p.B}]; !ok || sim != p.Sim {
			t.Fatalf("LSH pair %+v not bit-identical in cross output", p)
		}
	}
	// Sorted by (A, B) with no duplicates, like every other mode.
	for i := 1; i < len(got); i++ {
		if got[i-1].A > got[i].A || (got[i-1].A == got[i].A && got[i-1].B >= got[i].B) {
			t.Fatalf("output not strictly (A,B)-sorted at %d: %+v, %+v", i, got[i-1], got[i])
		}
	}
}

// TestLSHHighBandRecall: with enough bands the S-curve is near-exhaustive
// over genuinely similar pairs — every cross-product pair at or above 0.5
// (name Jaccard well above the curve's knee) is found.
func TestLSHHighBandRecall(t *testing.T) {
	ta, tb := synthTables(120, 120, 23)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got := lshPairs(t, s, "name", 1, 32, 0.5, 0)
	found := make(map[[2]int]bool, len(got))
	for _, p := range got {
		found[[2]int{p.A, p.B}] = true
	}
	missed := 0
	for _, p := range CrossProduct(s, 0.5) {
		if !found[[2]int{p.A, p.B}] {
			missed++
		}
	}
	if missed > 0 {
		t.Fatalf("rows=1 bands=32 missed %d of the >= 0.5 cross pairs", missed)
	}
}

// TestLSHDeterminism: bit-identical output at any worker count, and across
// repeated runs.
func TestLSHDeterminism(t *testing.T) {
	ta, tb := synthTables(200, 180, 24)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := lshPairs(t, s, "name", 2, 16, 0.2, 1)
	if len(want) == 0 {
		t.Fatal("no pairs")
	}
	for _, workers := range []int{2, 3, 7, 0} {
		got := lshPairs(t, s, "name", 2, 16, 0.2, workers)
		requirePairsEqual(t, "lsh workers", got, want)
	}
	requirePairsEqual(t, "lsh rerun", lshPairs(t, s, "name", 2, 16, 0.2, 0), want)
}

// TestLSHEmptyAndEdgeTables: empty tables, empty attribute values and
// single-record tables generate without error; records with no tokens in
// the blocking attribute never become candidates (ModeToken's size-filter
// contract).
func TestLSHEmptyAndEdgeTables(t *testing.T) {
	ta, _ := synthTables(5, 5, 25)
	for _, tb := range []*records.Table{emptyTable("b"), oneRecordTable("b", "acme turbo widget")} {
		s, err := NewScorer(ta, tb, synthSpecs())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := LSHBlocked(s, "name", 2, 8, 0.1); err != nil {
			t.Fatalf("edge table: %v", err)
		}
	}
	// A record with an empty blocking value pairs with nothing, even though
	// cross-mode scoring would give two empty values Jaccard 1.
	empty := &records.Table{
		Name:       "a",
		Attributes: []string{"name"},
		Records: []records.Record{
			{ID: 0, Values: []string{""}},
			{ID: 1, Values: []string{"acme turbo widget"}},
		},
	}
	s, err := NewScorer(empty, empty, []AttributeSpec{{Attribute: "name", Kind: KindJaccard, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := LSHBlocked(s, "name", 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].A != 1 || got[0].B != 1 {
		t.Fatalf("empty-value records must not pair: %+v", got)
	}
}

// TestGenerateConcurrentSameScorer pins the bugfix for the blockTokens data
// race: concurrent Generate calls on one scorer — including on a blocking
// attribute no Jaccard spec covers, which used to extend the shared token
// dictionary — are safe (run under -race in CI) and agree with a
// sequential run.
func TestGenerateConcurrentSameScorer(t *testing.T) {
	ta, tb := synthTables(80, 80, 26)
	// JaroWinkler-only specs: no attribute's tokens are interned for
	// scoring, so every blocking attribute exercises the pre-interned
	// blockTok path.
	specs := []AttributeSpec{{Attribute: "brand", Kind: KindJaroWinkler, Weight: 1}}
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Options{
		{Mode: ModeToken, Attribute: "name", MinShared: 2, Threshold: 0.2},
		{Mode: ModeToken, Attribute: "description", MinShared: 2, Threshold: 0.2},
		{Mode: ModeLSH, Attribute: "name", Rows: 2, Bands: 16, Threshold: 0.2},
		{Mode: ModeSorted, Attribute: "name", Window: 6, Threshold: 0.2},
	}
	want := make([][]Pair, len(opts))
	for i, opt := range opts {
		if want[i], err = Generate(context.Background(), s, opt); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8*len(opts))
	for g := 0; g < 8; g++ {
		for i, opt := range opts {
			wg.Add(1)
			go func(i int, opt Options) {
				defer wg.Done()
				got, err := Generate(context.Background(), s, opt)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[i]) {
					errs <- errors.New("concurrent Generate diverged from sequential run")
					return
				}
				for k := range got {
					if got[k] != want[i][k] {
						errs <- errors.New("concurrent Generate diverged from sequential run")
						return
					}
				}
			}(i, opt)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
