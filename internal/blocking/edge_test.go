package blocking

import (
	"errors"
	"testing"

	"humo/internal/records"
)

// Edge cases of candidate generation, each asserted identically against the
// seed reference implementation (reference_test.go) and the rebuilt path.

func emptyTable(name string) *records.Table {
	return &records.Table{Name: name, Attributes: []string{"name", "description", "brand"}}
}

func oneRecordTable(name, title string) *records.Table {
	return &records.Table{
		Name:       name,
		Attributes: []string{"name", "description", "brand"},
		Records: []records.Record{
			{ID: 0, EntityID: 0, Values: []string{title, title + " extra words", "acme"}},
		},
	}
}

// assertAllModesAgree runs every generator over the tables and holds new ==
// reference for each.
func assertAllModesAgree(t *testing.T, ta, tb *records.Table) {
	t.Helper()
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)

	requirePairsEqual(t, "cross", CrossProduct(s, 0.1), refCrossProduct(ref, 0.1))

	got, err := TokenBlocked(s, "name", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "token", got, refTokenBlocked(t, ref, "name", 1, 0.1))

	got, err = SortedNeighborhood(s, "name", 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "sorted", got, refSortedNeighborhood(t, ref, "name", 4, 0.1))
}

func TestEdgeEmptyTables(t *testing.T) {
	ta, _ := synthTables(5, 5, 10)
	t.Run("both empty", func(t *testing.T) { assertAllModesAgree(t, emptyTable("a"), emptyTable("b")) })
	t.Run("a empty", func(t *testing.T) { assertAllModesAgree(t, emptyTable("a"), ta) })
	t.Run("b empty", func(t *testing.T) { assertAllModesAgree(t, ta, emptyTable("b")) })
}

func TestEdgeSingleRecordTables(t *testing.T) {
	t.Run("identical", func(t *testing.T) {
		assertAllModesAgree(t, oneRecordTable("a", "acme turbo widget"), oneRecordTable("b", "acme turbo widget"))
	})
	t.Run("disjoint", func(t *testing.T) {
		assertAllModesAgree(t, oneRecordTable("a", "acme turbo widget"), oneRecordTable("b", "globex quiet gadget"))
	})
	t.Run("one against many", func(t *testing.T) {
		_, tb := synthTables(5, 20, 11)
		assertAllModesAgree(t, oneRecordTable("a", "acme turbo widget"), tb)
	})
}

// TestEdgeAttributeMissingFromOneTable: schemas that disagree fail scorer
// construction, and blocking on an attribute absent from one table fails
// generation with the table's error — identically on old and new paths.
func TestEdgeAttributeMissingFromOneTable(t *testing.T) {
	ta := &records.Table{
		Name:       "a",
		Attributes: []string{"name", "description", "brand"},
		Records:    []records.Record{{ID: 0, Values: []string{"x y", "x y z", "x"}}},
	}
	tbNoBrand := &records.Table{
		Name:       "b",
		Attributes: []string{"name", "description"},
		Records:    []records.Record{{ID: 0, Values: []string{"x y", "x y w"}}},
	}
	if _, err := NewScorer(ta, tbNoBrand, synthSpecs()); !errors.Is(err, records.ErrBadTable) {
		t.Fatalf("scorer over mismatched schemas: err = %v, want ErrBadTable", err)
	}
	// A scorer over the shared attributes builds, but blocking on the
	// missing attribute is refused.
	shared := []AttributeSpec{
		{Attribute: "name", Kind: KindJaccard, Weight: 1},
		{Attribute: "description", Kind: KindCosine, Weight: 1},
	}
	s, err := NewScorer(ta, tbNoBrand, shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TokenBlocked(s, "brand", 1, 0); !errors.Is(err, records.ErrBadTable) {
		t.Errorf("token blocking on missing attribute: err = %v, want ErrBadTable", err)
	}
	if _, err := SortedNeighborhood(s, "brand", 3, 0); !errors.Is(err, records.ErrBadTable) {
		t.Errorf("sorted blocking on missing attribute: err = %v, want ErrBadTable", err)
	}
}

// TestEdgeWindowLargerThanTables: a sorted-neighborhood window wider than
// the union of both tables degenerates to the full cross product.
func TestEdgeWindowLargerThanTables(t *testing.T) {
	ta, tb := synthTables(6, 7, 12)
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	window := len(ta.Records) + len(tb.Records) + 5
	got, err := SortedNeighborhood(s, "name", window, 0)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "giant window vs ref", got, refSortedNeighborhood(t, ref, "name", window, 0))
	requirePairsEqual(t, "giant window vs cross", got, refCrossProduct(ref, 0))
}

// TestEdgeThresholdBoundary: a pair whose similarity equals the threshold
// exactly is kept (>=, not >) by every generator, old and new.
func TestEdgeThresholdBoundary(t *testing.T) {
	// Two single-attribute records with token sets {x,y,z} and {x,y,w}:
	// Jaccard = 2/4 = 0.5 exactly in float64.
	ta := &records.Table{
		Name:       "a",
		Attributes: []string{"name"},
		Records: []records.Record{
			{ID: 0, Values: []string{"x y z"}},
			{ID: 1, Values: []string{"p q r"}},
		},
	}
	tb := &records.Table{
		Name:       "b",
		Attributes: []string{"name"},
		Records:    []records.Record{{ID: 0, Values: []string{"x y w"}}},
	}
	specs := []AttributeSpec{{Attribute: "name", Kind: KindJaccard, Weight: 1}}
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	if sim := s.Score(0, 0); sim != 0.5 {
		t.Fatalf("boundary pair scores %v, want exactly 0.5", sim)
	}

	cross := CrossProduct(s, 0.5)
	requirePairsEqual(t, "boundary cross", cross, refCrossProduct(ref, 0.5))
	if len(cross) != 1 || cross[0] != (Pair{A: 0, B: 0, Sim: 0.5}) {
		t.Fatalf("threshold-equal pair not kept: %+v", cross)
	}

	tok, err := TokenBlocked(s, "name", 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "boundary token", tok, refTokenBlocked(t, ref, "name", 2, 0.5))
	if len(tok) != 1 {
		t.Fatalf("token blocking dropped the threshold-equal pair: %+v", tok)
	}

	// Nudging the threshold one ulp above 0.5 drops the pair.
	above := CrossProduct(s, 0.5000000000000001)
	if len(above) != 0 {
		t.Fatalf("pair above threshold kept: %+v", above)
	}
}

// TestEdgeMinSharedExactTokens: a record with exactly MinShared tokens sits
// on the size-filter boundary and must still pair — the filter is
// "fewer than", not "at most".
func TestEdgeMinSharedExactTokens(t *testing.T) {
	ta := oneRecordTable("a", "alpha beta gamma")
	tb := oneRecordTable("b", "alpha beta gamma")
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TokenBlocked(s, "name", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].A != 0 || got[0].B != 0 {
		t.Fatalf("exact-MinShared pair not kept: %+v", got)
	}
}

// TestEdgeEmptyAttributeValues: records whose blocking attribute is empty
// tokenize to nothing, never enter the index, and generation still succeeds
// with an empty result when every record is filtered out.
func TestEdgeEmptyAttributeValues(t *testing.T) {
	blank := func(name string, n int) *records.Table {
		tbl := &records.Table{Name: name, Attributes: []string{"name", "description", "brand"}}
		for i := 0; i < n; i++ {
			tbl.Records = append(tbl.Records, records.Record{
				ID: i, EntityID: i, Values: []string{"", "some description text", "acme"},
			})
		}
		return tbl
	}
	ta, tb := blank("a", 4), blank("b", 3)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := TokenBlocked(s, "name", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("pairs from empty blocking values: %+v", got)
	}
	// Same contract on the LSH path: no sketches, no candidates, no error.
	got, err = LSHBlocked(s, "name", 2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("LSH pairs from empty blocking values: %+v", got)
	}
	// A mixed table — one real record among blanks — still pairs normally.
	ta.Records[2].Values[0] = "acme turbo widget"
	tb.Records[1].Values[0] = "acme turbo widget"
	s2, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got, err = TokenBlocked(s2, "name", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].A != 2 || got[0].B != 1 {
		t.Fatalf("mixed table pairs = %+v, want exactly (2,1)", got)
	}
}

// TestEdgeMinSharedExceedsTokens: records with fewer tokens than MinShared
// can never pair (the size filter), matching the reference.
func TestEdgeMinSharedExceedsTokens(t *testing.T) {
	ta := oneRecordTable("a", "only two")
	tb := oneRecordTable("b", "only two")
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	got, err := TokenBlocked(s, "name", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "minShared > tokens", got, refTokenBlocked(t, ref, "name", 3, 0))
	if len(got) != 0 {
		t.Fatalf("pairs found despite minShared exceeding token counts: %+v", got)
	}
}
