package blocking

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"humo/internal/records"
)

// Seed-vs-rebuilt benchmarks. The "Seed" variants run the reference
// implementation from reference_test.go — the exact code the repository
// shipped with (map token sets, per-pair re-tokenization, unfiltered index)
// — so the speedup of the interned, prefix-filtered, sharded path is
// measured, not asserted. The humo-level BenchmarkGenerateWorkload (CI
// bench gate) covers the public entry point at 1k/10k/50k records.

// benchSynthTables is synthTables with a vocabulary that scales with n the
// way real catalogs do (the fixed 400-word vocabulary of the equivalence
// tests makes every posting list huge at 10k records, which stresses the
// dedup paths but is not a realistic workload shape).
func benchSynthTables(n int, seed int64) (*records.Table, *records.Table) {
	rng := rand.New(rand.NewSource(seed))
	vocabN := n
	if vocabN < 500 {
		vocabN = 500
	}
	vocab := make([]string, vocabN)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%05d", i)
	}
	word := func(r *rand.Rand) string {
		if r.Float64() < 0.2 {
			return vocab[r.Intn(50)]
		}
		return vocab[r.Intn(len(vocab))]
	}
	brands := []string{"acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "hooli"}
	title := func(r *rand.Rand) []string {
		k := 4 + r.Intn(4)
		out := make([]string, k)
		out[0] = brands[r.Intn(len(brands))]
		for i := 1; i < k; i++ {
			out[i] = word(r)
		}
		return out
	}
	corrupt := func(r *rand.Rand, words []string) []string {
		out := append([]string(nil), words...)
		if r.Float64() < 0.6 {
			out[1+r.Intn(len(out)-1)] = word(r)
		}
		return out
	}
	attrs := []string{"name", "description", "brand"}
	rec := func(id, entity int, words []string, r *rand.Rand) records.Record {
		return records.Record{
			ID:       id,
			EntityID: entity,
			Values: []string{
				strings.Join(words, " "),
				strings.Join(append(append([]string{}, words...), word(r), word(r)), " "),
				words[0],
			},
		}
	}
	ta := &records.Table{Name: "a", Attributes: attrs}
	tb := &records.Table{Name: "b", Attributes: attrs}
	shared := n / 2
	for i := 0; i < n; i++ {
		words := title(rng)
		ta.Records = append(ta.Records, rec(i, i, words, rng))
		if i < shared {
			tb.Records = append(tb.Records, rec(len(tb.Records), i, corrupt(rng, words), rng))
		}
	}
	for len(tb.Records) < n {
		tb.Records = append(tb.Records, rec(len(tb.Records), n+len(tb.Records), title(rng), rng))
	}
	return ta, tb
}

func BenchmarkTokenBlocked(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		ta, tb := benchSynthTables(n, 42)
		s, err := NewScorer(ta, tb, synthSpecs())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs, err := TokenBlocked(s, "name", 2, 0.2)
				if err != nil {
					b.Fatal(err)
				}
				if len(pairs) == 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

// benchLongTables builds bibliographic-style tables (10-18-token titles,
// ~10% of draws from a 50-token hot set) for the large-scale mode
// comparison: the long-text regime where inverted-index blocking pays a
// posting scan for every pair sharing one hot token, while bottom-Rows
// sketches never touch pairs sharing fewer than Rows tokens.
func benchLongTables(n int, seed int64) (*records.Table, *records.Table) {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, n)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%05d", i)
	}
	word := func(r *rand.Rand) string {
		if r.Float64() < 0.1 {
			return vocab[r.Intn(50)]
		}
		return vocab[r.Intn(len(vocab))]
	}
	title := func(r *rand.Rand) []string {
		k := 10 + r.Intn(9)
		out := make([]string, k)
		for i := range out {
			out[i] = word(r)
		}
		return out
	}
	corrupt := func(r *rand.Rand, words []string) []string {
		out := append([]string(nil), words...)
		for k := 0; k < 2; k++ {
			if r.Float64() < 0.6 {
				out[r.Intn(len(out))] = word(r)
			}
		}
		return out
	}
	rec := func(id, entity int, words []string) records.Record {
		return records.Record{ID: id, EntityID: entity, Values: []string{strings.Join(words, " ")}}
	}
	ta := &records.Table{Name: "a", Attributes: []string{"title"}}
	tb := &records.Table{Name: "b", Attributes: []string{"title"}}
	shared := n / 2
	for i := 0; i < n; i++ {
		words := title(rng)
		ta.Records = append(ta.Records, rec(i, i, words))
		if i < shared {
			tb.Records = append(tb.Records, rec(len(tb.Records), i, corrupt(rng, words)))
		}
	}
	for len(tb.Records) < n {
		tb.Records = append(tb.Records, rec(len(tb.Records), n+len(tb.Records), title(rng)))
	}
	return ta, tb
}

// BenchmarkBlocked100k is the 100k x 100k head-to-head of the two scalable
// modes on one prebuilt scorer — pure candidate generation, no scorer
// construction in the timed loop. Guarded so the CI smoke run stays fast:
//
//	HUMO_BENCH_XL=1 go test -bench Blocked100k -run '^$' -benchtime 1x ./internal/blocking/
//
// On this fixture the LSH join is >= 10x faster than the token join (both
// ends of every found pair still go through the same verification and
// scoring), with recall pinned by TestGenerateWorkloadLSHRecall and the
// humo-level bench fixture test.
func BenchmarkBlocked100k(b *testing.B) {
	if os.Getenv("HUMO_BENCH_XL") == "" {
		b.Skip("set HUMO_BENCH_XL=1 to run the 100k x 100k comparison")
	}
	ta, tb := benchLongTables(100000, 42)
	specs := []AttributeSpec{{Attribute: "title", Kind: KindJaccard, Weight: 1}}
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pairs, err := Generate(context.Background(), s, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(pairs) == 0 {
				b.Fatal("no pairs")
			}
		}
	}
	b.Run("token", func(b *testing.B) {
		run(b, Options{Mode: ModeToken, Attribute: "title", MinShared: 3, Threshold: 0.3})
	})
	b.Run("lsh", func(b *testing.B) {
		run(b, Options{Mode: ModeLSH, Attribute: "title", Rows: 2, Bands: 16, MinShared: 3, Threshold: 0.3})
	})
}

func BenchmarkLSHBlocked(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		ta, tb := benchSynthTables(n, 42)
		s, err := NewScorer(ta, tb, synthSpecs())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs, err := LSHBlocked(s, "name", 2, 32, 0.2)
				if err != nil {
					b.Fatal(err)
				}
				if len(pairs) == 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

func BenchmarkTokenBlockedSeed(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		ta, tb := benchSynthTables(n, 42)
		ref := newRefScorer(b, ta, tb, synthSpecs())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pairs := refTokenBlocked(b, ref, "name", 2, 0.2)
				if len(pairs) == 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

func BenchmarkCrossProduct(b *testing.B) {
	ta, tb := benchSynthTables(1000, 42)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pairs := CrossProduct(s, 0.2); len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkCrossProductSeed(b *testing.B) {
	ta, tb := benchSynthTables(1000, 42)
	ref := newRefScorer(b, ta, tb, synthSpecs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pairs := refCrossProduct(ref, 0.2); len(pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkScorePair(b *testing.B) {
	ta, tb := benchSynthTables(100, 42)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		b.Fatal(err)
	}
	sc := s.NewScratch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ScoreWith(sc, i%100, (i*7)%100)
	}
}

func BenchmarkScorePairSeed(b *testing.B) {
	ta, tb := benchSynthTables(100, 42)
	ref := newRefScorer(b, ta, tb, synthSpecs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.score(i%100, (i*7)%100)
	}
}
