package blocking

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"humo/internal/records"
	"humo/internal/similarity"
)

// This file reimplements the seed's candidate generation verbatim — map
// token sets, string-kernel scoring, O(n²) scans — as the reference the
// rebuilt interned/sharded path is held bit-identical to: same pair sets,
// same similarity bits.

// refScorer scores exactly like the seed Scorer did: Jaccard over
// map-backed token sets, everything else through the string kernels,
// re-tokenizing per call.
type refScorer struct {
	ta, tb  *records.Table
	specs   []AttributeSpec
	weights []float64
	colA    []int
	colB    []int
	tokA    []map[int]map[string]struct{}
	tokB    []map[int]map[string]struct{}
}

func newRefScorer(t testing.TB, ta, tb *records.Table, specs []AttributeSpec) *refScorer {
	t.Helper()
	s := &refScorer{
		ta: ta, tb: tb, specs: specs,
		weights: make([]float64, len(specs)),
		colA:    make([]int, len(specs)),
		colB:    make([]int, len(specs)),
		tokA:    make([]map[int]map[string]struct{}, len(specs)),
		tokB:    make([]map[int]map[string]struct{}, len(specs)),
	}
	var sum float64
	for _, spec := range specs {
		sum += spec.Weight
	}
	for i, spec := range specs {
		var err error
		if s.colA[i], err = ta.AttributeIndex(spec.Attribute); err != nil {
			t.Fatal(err)
		}
		if s.colB[i], err = tb.AttributeIndex(spec.Attribute); err != nil {
			t.Fatal(err)
		}
		s.weights[i] = spec.Weight / sum
		if spec.Kind == KindJaccard {
			s.tokA[i] = refTokenizeColumn(ta, s.colA[i])
			s.tokB[i] = refTokenizeColumn(tb, s.colB[i])
		}
	}
	return s
}

func refTokenizeColumn(t *records.Table, col int) map[int]map[string]struct{} {
	out := make(map[int]map[string]struct{}, len(t.Records))
	for i, r := range t.Records {
		out[i] = similarity.TokenSet(r.Values[col])
	}
	return out
}

func (s *refScorer) score(i, j int) float64 {
	var sum float64
	for k := range s.specs {
		var sim float64
		switch s.specs[k].Kind {
		case KindJaccard:
			sim = similarity.JaccardSets(s.tokA[k][i], s.tokB[k][j])
		case KindJaroWinkler:
			sim = similarity.JaroWinkler(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
		case KindLevenshtein:
			sim = similarity.LevenshteinSim(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
		case KindCosine:
			sim = similarity.Cosine(s.ta.Records[i].Values[s.colA[k]], s.tb.Records[j].Values[s.colB[k]])
		}
		sum += s.weights[k] * sim
	}
	return sum
}

// refCrossProduct is the seed CrossProduct: the full O(n²) scan.
func refCrossProduct(s *refScorer, threshold float64) []Pair {
	var out []Pair
	for i := range s.ta.Records {
		for j := range s.tb.Records {
			if sim := s.score(i, j); sim >= threshold {
				out = append(out, Pair{A: i, B: j, Sim: sim})
			}
		}
	}
	return out
}

// refTokenBlocked is the seed TokenBlocked: a full (unfiltered) inverted
// index with map-counted overlaps.
func refTokenBlocked(t testing.TB, s *refScorer, attribute string, minShared int, threshold float64) []Pair {
	t.Helper()
	colA, err := s.ta.AttributeIndex(attribute)
	if err != nil {
		t.Fatal(err)
	}
	colB, err := s.tb.AttributeIndex(attribute)
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[string][]int)
	for j, r := range s.tb.Records {
		for tok := range similarity.TokenSet(r.Values[colB]) {
			index[tok] = append(index[tok], j)
		}
	}
	out := []Pair{}
	shared := make(map[int]int)
	for i, r := range s.ta.Records {
		clear(shared)
		for tok := range similarity.TokenSet(r.Values[colA]) {
			for _, j := range index[tok] {
				shared[j]++
			}
		}
		for j, cnt := range shared {
			if cnt < minShared {
				continue
			}
			if sim := s.score(i, j); sim >= threshold {
				out = append(out, Pair{A: i, B: j, Sim: sim})
			}
		}
	}
	refSortPairs(out)
	return out
}

// refSortedNeighborhood is the seed SortedNeighborhood.
func refSortedNeighborhood(t testing.TB, s *refScorer, attribute string, window int, threshold float64) []Pair {
	t.Helper()
	colA, err := s.ta.AttributeIndex(attribute)
	if err != nil {
		t.Fatal(err)
	}
	colB, err := s.tb.AttributeIndex(attribute)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		key   string
		table int
		idx   int
	}
	entries := make([]entry, 0, len(s.ta.Records)+len(s.tb.Records))
	for i, r := range s.ta.Records {
		entries = append(entries, entry{key: r.Values[colA], table: 0, idx: i})
	}
	for j, r := range s.tb.Records {
		entries = append(entries, entry{key: r.Values[colB], table: 1, idx: j})
	}
	sort.Slice(entries, func(x, y int) bool {
		if entries[x].key != entries[y].key {
			return entries[x].key < entries[y].key
		}
		if entries[x].table != entries[y].table {
			return entries[x].table < entries[y].table
		}
		return entries[x].idx < entries[y].idx
	})
	seen := map[[2]int]struct{}{}
	out := []Pair{}
	for x := range entries {
		hi := x + window
		if hi > len(entries) {
			hi = len(entries)
		}
		for y := x + 1; y < hi; y++ {
			a, b := entries[x], entries[y]
			if a.table == b.table {
				continue
			}
			if a.table == 1 {
				a, b = b, a
			}
			key := [2]int{a.idx, b.idx}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if sim := s.score(a.idx, b.idx); sim >= threshold {
				out = append(out, Pair{A: a.idx, B: b.idx, Sim: sim})
			}
		}
	}
	refSortPairs(out)
	return out
}

func refSortPairs(out []Pair) {
	sort.Slice(out, func(x, y int) bool {
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
}

// synthTables generates two product-catalog-like tables with na and nb
// records: overlapping entities with corrupted copies, plus unrelated
// fillers, so the candidate space has real structure (shared tokens,
// near-duplicates, disjoint records). Fully deterministic in seed.
func synthTables(na, nb int, seed int64) (*records.Table, *records.Table) {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%03d", i)
	}
	brands := []string{"acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "hooli"}
	makeTitle := func(r *rand.Rand) []string {
		n := 3 + r.Intn(5)
		words := make([]string, n)
		words[0] = brands[r.Intn(len(brands))]
		for i := 1; i < n; i++ {
			words[i] = vocab[r.Intn(len(vocab))]
		}
		return words
	}
	corrupt := func(r *rand.Rand, words []string) []string {
		out := append([]string(nil), words...)
		if len(out) > 1 && r.Float64() < 0.5 {
			out[r.Intn(len(out))] = vocab[r.Intn(len(vocab))]
		}
		if r.Float64() < 0.3 {
			out = append(out, vocab[r.Intn(len(vocab))])
		}
		return out
	}
	attrs := []string{"name", "description", "brand"}
	newRec := func(id, entity int, words []string, r *rand.Rand) records.Record {
		return records.Record{
			ID:       id,
			EntityID: entity,
			Values: []string{
				strings.Join(words, " "),
				strings.Join(append(append([]string{}, words...), vocab[r.Intn(len(vocab))], vocab[r.Intn(len(vocab))]), " "),
				words[0],
			},
		}
	}
	shared := na / 2
	ta := &records.Table{Name: "a", Attributes: attrs}
	tb := &records.Table{Name: "b", Attributes: attrs}
	for i := 0; i < na; i++ {
		words := makeTitle(rng)
		ta.Records = append(ta.Records, newRec(i, i, words, rng))
		if i < shared && len(tb.Records) < nb {
			tb.Records = append(tb.Records, newRec(len(tb.Records), i, corrupt(rng, words), rng))
		}
	}
	for len(tb.Records) < nb {
		words := makeTitle(rng)
		tb.Records = append(tb.Records, newRec(len(tb.Records), na+len(tb.Records), words, rng))
	}
	return ta, tb
}

func synthSpecs() []AttributeSpec {
	return []AttributeSpec{
		{Attribute: "name", Kind: KindJaccard, Weight: 4},
		{Attribute: "description", Kind: KindCosine, Weight: 2},
		{Attribute: "brand", Kind: KindJaroWinkler, Weight: 1},
	}
}

// requirePairsEqual asserts two pair slices are identical: same order, same
// indices, bit-identical similarities.
func requirePairsEqual(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestEquivalenceCross holds the rebuilt cross-product path bit-identical
// to the seed scan, across measure kinds including Levenshtein.
func TestEquivalenceCross(t *testing.T) {
	ta, tb := synthTables(60, 80, 1)
	specs := []AttributeSpec{
		{Attribute: "name", Kind: KindJaccard, Weight: 3},
		{Attribute: "description", Kind: KindCosine, Weight: 2},
		{Attribute: "brand", Kind: KindLevenshtein, Weight: 1},
	}
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	for _, threshold := range []float64{0, 0.3, 0.6} {
		requirePairsEqual(t, fmt.Sprintf("cross@%v", threshold),
			CrossProduct(s, threshold), refCrossProduct(ref, threshold))
	}
}

// TestEquivalenceTokenBlocked holds the prefix-filtered inverted-index join
// bit-identical to the seed's unfiltered index scan.
func TestEquivalenceTokenBlocked(t *testing.T) {
	ta, tb := synthTables(150, 200, 2)
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	for _, minShared := range []int{1, 2, 3} {
		for _, threshold := range []float64{0, 0.25} {
			label := fmt.Sprintf("token k=%d t=%v", minShared, threshold)
			got, err := TokenBlocked(s, "name", minShared, threshold)
			if err != nil {
				t.Fatal(err)
			}
			requirePairsEqual(t, label, got, refTokenBlocked(t, ref, "name", minShared, threshold))
		}
	}
	// Blocking on an attribute with no Jaccard spec interns fresh tokens.
	got, err := TokenBlocked(s, "brand", 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	requirePairsEqual(t, "token brand", got, refTokenBlocked(t, ref, "brand", 1, 0.4))
}

// TestEquivalenceSortedNeighborhood holds the parallel-scored window pass
// bit-identical to the seed implementation.
func TestEquivalenceSortedNeighborhood(t *testing.T) {
	ta, tb := synthTables(80, 90, 3)
	specs := synthSpecs()
	s, err := NewScorer(ta, tb, specs)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefScorer(t, ta, tb, specs)
	for _, window := range []int{2, 5, 16} {
		got, err := SortedNeighborhood(s, "name", window, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		requirePairsEqual(t, fmt.Sprintf("sorted w=%d", window), got,
			refSortedNeighborhood(t, ref, "name", window, 0.2))
	}
}

// TestGenerateWorkerInvariance pins the determinism guarantee: every mode
// returns identical output at any worker count.
func TestGenerateWorkerInvariance(t *testing.T) {
	ta, tb := synthTables(120, 150, 4)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	for _, opt := range []Options{
		{Mode: ModeCross, Threshold: 0.3},
		{Mode: ModeToken, Attribute: "name", MinShared: 2, Threshold: 0.2},
		{Mode: ModeSorted, Attribute: "name", Window: 7, Threshold: 0.2},
	} {
		opt.Workers = 1
		want, err := Generate(ctx, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 0} {
			opt.Workers = workers
			got, err := Generate(ctx, s, opt)
			if err != nil {
				t.Fatal(err)
			}
			requirePairsEqual(t, fmt.Sprintf("%s workers=%d", opt.Mode, workers), got, want)
		}
	}
}

// TestGenerateCancellation: a canceled context aborts generation with the
// context's error.
func TestGenerateCancellation(t *testing.T) {
	ta, tb := synthTables(200, 200, 5)
	s, err := NewScorer(ta, tb, synthSpecs())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Generate(ctx, s, Options{Mode: ModeCross}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled generate returned %v, want context.Canceled", err)
	}
	if _, err := Generate(ctx, s, Options{Mode: ModeToken, Attribute: "name", MinShared: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled token generate returned %v, want context.Canceled", err)
	}
}

func TestParseModeAndKind(t *testing.T) {
	for _, name := range []string{"cross", "token", "sorted"} {
		m, err := ParseMode(name)
		if err != nil || string(m) != name {
			t.Errorf("ParseMode(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ParseMode("nope"); !errors.Is(err, ErrBadSpec) {
		t.Error("unknown mode should fail")
	}
	for _, name := range []string{"jaccard", "jarowinkler", "levenshtein", "cosine"} {
		k, err := ParseKind(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseKind(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseKind("nope"); !errors.Is(err, ErrBadSpec) {
		t.Error("unknown kind should fail")
	}
}
