package blocking

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"humo/internal/records"
)

// incSpecs avoids KindCosine: cosine accumulates its dot product in
// token-id order, which is the one similarity where incremental and
// from-scratch dictionaries can differ in the last bit (documented on
// Incremental). The equivalence tests pin bit-identical behavior on the
// id-insensitive kinds.
func incSpecs() []AttributeSpec {
	return []AttributeSpec{
		{Attribute: "name", Kind: KindJaccard, Weight: 4},
		{Attribute: "description", Kind: KindJaccard, Weight: 2},
		{Attribute: "brand", Kind: KindJaroWinkler, Weight: 1},
	}
}

// tablePrefix copies the first n records of t into a fresh appendable table.
func tablePrefix(t *records.Table, n int) *records.Table {
	return &records.Table{
		Name:       t.Name,
		Attributes: t.Attributes,
		Records:    append([]records.Record(nil), t.Records[:n]...),
	}
}

// appendBatch grows dst by the records src[lo:hi].
func appendBatch(t *testing.T, dst *records.Table, src *records.Table, lo, hi int) {
	t.Helper()
	if _, err := dst.Append(src.Records[lo:hi]...); err != nil {
		t.Fatalf("append [%d:%d): %v", lo, hi, err)
	}
}

func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].A != pairs[y].A {
			return pairs[x].A < pairs[y].A
		}
		return pairs[x].B < pairs[y].B
	})
}

// TestIncrementalEquivalence pins the streaming contract: building over a
// prefix of the tables and absorbing the rest through Append + Sync yields
// — as a union, at any worker count — exactly the pairs a from-scratch
// Generate produces over the final tables, bit-identical similarities
// included, for both delta-maintained modes.
func TestIncrementalEquivalence(t *testing.T) {
	fullA, fullB := synthTables(90, 110, 31)
	opts := map[string]Options{
		"token": {Mode: ModeToken, Attribute: "name", MinShared: 2, Threshold: 0.3},
		"lsh":   {Mode: ModeLSH, Attribute: "name", Rows: 2, Bands: 16, MinShared: 2, Threshold: 0.3},
	}

	// Reference: from-scratch generation over the final tables.
	want := map[string][]Pair{}
	for name, opt := range opts {
		s, err := NewScorer(fullA, fullB, incSpecs())
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := Generate(context.Background(), s, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = pairs
	}

	for name, opt := range opts {
		for _, workers := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				opt := opt
				opt.Workers = workers
				ta := tablePrefix(fullA, 50)
				tb := tablePrefix(fullB, 60)
				s, err := NewScorer(ta, tb, incSpecs())
				if err != nil {
					t.Fatal(err)
				}
				inc, got, err := NewIncremental(context.Background(), s, opt)
				if err != nil {
					t.Fatal(err)
				}

				// Three growth epochs: both tables, then A only, then B only.
				appendBatch(t, ta, fullA, 50, 70)
				appendBatch(t, tb, fullB, 60, 85)
				d1, err := inc.Sync(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				appendBatch(t, ta, fullA, 70, 90)
				d2, err := inc.Sync(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				appendBatch(t, tb, fullB, 85, 110)
				d3, err := inc.Sync(context.Background())
				if err != nil {
					t.Fatal(err)
				}

				// No growth: a Sync is a no-op.
				noop, err := inc.Sync(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if noop != nil {
					t.Fatalf("no-growth Sync returned %d pairs, want nil", len(noop))
				}

				got = append(got, d1...)
				got = append(got, d2...)
				got = append(got, d3...)
				sortPairs(got)
				requirePairsEqual(t, name, got, want[name])
			})
		}
	}
}

// TestIncrementalGrowthWithNoNewCandidates: table growth whose records are
// too dissimilar to pair with anything still syncs cleanly (empty delta,
// state advanced — a later real append must not re-emit or miss pairs).
func TestIncrementalGrowthWithNoNewCandidates(t *testing.T) {
	fullA, fullB := synthTables(40, 50, 33)
	ta := tablePrefix(fullA, 40)
	tb := tablePrefix(fullB, 40)
	s, err := NewScorer(ta, tb, incSpecs())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Mode: ModeToken, Attribute: "name", MinShared: 2, Threshold: 0.3}
	inc, _, err := NewIncremental(context.Background(), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Append(records.Record{ID: 9000, EntityID: 9000, Values: []string{"zzz-unique-alpha", "zzz-unique-beta", "zzz"}}); err != nil {
		t.Fatal(err)
	}
	delta, err := inc.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 0 {
		t.Fatalf("dissimilar append produced %d pairs, want 0", len(delta))
	}
	// The dissimilar record is now part of the retained state; a real
	// append afterwards must still match from-scratch.
	appendBatch(t, tb, fullB, 40, 50)
	d2, err := inc.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every delta pair must appear, bits and all, in the from-scratch set
	// over the final tables, and every from-scratch pair touching the new
	// B records must be in the delta.
	sFull, err := NewScorer(ta, tb, incSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(context.Background(), sFull, opt)
	if err != nil {
		t.Fatal(err)
	}
	inWant := make(map[Pair]bool, len(want))
	for _, p := range want {
		inWant[p] = true
	}
	for _, p := range d2 {
		if !inWant[p] {
			t.Fatalf("delta pair %+v not in from-scratch set", p)
		}
	}
	inDelta := make(map[Pair]bool, len(d2))
	for _, p := range d2 {
		inDelta[p] = true
	}
	for _, p := range want {
		if p.B >= 40 && !inDelta[p] {
			t.Fatalf("from-scratch pair %+v touches appended records but is missing from the delta", p)
		}
	}
}

// TestIncrementalRejectsStaticModes: only token and lsh support delta
// maintenance.
func TestIncrementalRejectsStaticModes(t *testing.T) {
	ta, tb := synthTables(10, 10, 7)
	s, err := NewScorer(ta, tb, incSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeCross, ModeSorted} {
		if _, _, err := NewIncremental(context.Background(), s, Options{Mode: mode, Attribute: "name", Window: 4, Threshold: 0.3}); err == nil {
			t.Fatalf("mode %q: NewIncremental succeeded, want error", mode)
		}
	}
}
