package blocking

import (
	"context"
	"fmt"
	"sort"

	"humo/internal/parallel"
	"humo/internal/similarity"
)

// Incremental maintains candidate generation under table appends. Built
// over a scorer and one ModeToken or ModeLSH configuration, it retains the
// blocking state a from-scratch Generate would rebuild — the inverted
// prefix index for ModeToken, the per-band sorted bucket tables for ModeLSH
// — and, after the scorer's tables grow through records.Table.Append, emits
// only the delta: candidates pairing a new record with an old one or two
// new records with each other.
//
// Equivalence contract, pinned by TestIncrementalEquivalence: the union of
// the initial pairs and every Sync delta equals — same (A, B) set, same
// similarity bits, at any worker count — what Generate would produce from
// scratch over the final tables. Three design points carry the contract:
//
//   - ModeLSH hashes token content, not token ids (see lshBandKeys), so the
//     incrementally extended dictionary and a from-scratch one yield the
//     same sketches.
//   - ModeToken freezes the prefix-filter token order at construction
//     (document frequency as of the initial tables ascending, then token
//     id; tokens first seen later count as frequency zero). The prefix
//     lemma — overlap ≥ k forces intersecting prefixes — holds under any
//     fixed total order, and verification against the real token lists
//     makes the candidate set independent of which order pruned the probes.
//   - Every candidate is verified (shared-token floor, then the similarity
//     threshold) exactly as in the from-scratch path, and deltas are scored
//     through the same order-stable fanOut.
//
// Similarity bits: KindJaccard, KindJaroWinkler and KindLevenshtein scores
// are pure functions of the record strings. KindCosine accumulates its dot
// product in token-id order, so an incrementally grown dictionary can
// differ from a from-scratch one in the last bit; avoid cosine specs where
// bit-exact incremental equivalence matters.
//
// An Incremental is not safe for concurrent use, and Sync mutates the
// underlying scorer — do not run Generate or scoring calls on the same
// scorer concurrently with Sync.
type Incremental struct {
	s   *Scorer
	opt Options

	// lenA, lenB are the record counts the retained state covers.
	lenA, lenB int

	// ModeToken state: df is the frozen prefix order (document frequency as
	// of construction, zero for tokens interned later), postA/postB the
	// inverted indexes over both tables' prefixes (record ids ascending).
	df    []int32
	postA [][]int32
	postB [][]int32

	// ModeLSH state: fixed band seeds, the verification floor, and the
	// per-band sorted packed (key<<32|record) bucket tables.
	seeds      []uint64
	floor      int
	entA, entB [][]uint64
}

// NewIncremental runs one from-scratch generation over the scorer's current
// tables — the returned pairs are bit-identical to Generate(ctx, s, opt) —
// and retains the blocking state future Sync calls maintain. Only ModeToken
// and ModeLSH support delta maintenance.
func NewIncremental(ctx context.Context, s *Scorer, opt Options) (*Incremental, []Pair, error) {
	if opt.Mode != ModeToken && opt.Mode != ModeLSH {
		return nil, nil, fmt.Errorf("%w: incremental maintenance needs mode token or lsh, not %q", ErrBadSpec, opt.Mode)
	}
	pairs, err := Generate(ctx, s, opt)
	if err != nil {
		return nil, nil, err
	}
	inc := &Incremental{s: s, opt: opt, lenA: len(s.ta.Records), lenB: len(s.tb.Records)}
	switch opt.Mode {
	case ModeToken:
		err = inc.initToken()
	case ModeLSH:
		err = inc.initLSH(ctx)
	}
	if err != nil {
		return nil, nil, err
	}
	return inc, pairs, nil
}

// Sync absorbs records appended to the scorer's tables since construction
// (or the previous Sync): the scorer's representations are extended, the
// retained index state is updated, and the scored new-vs-old and
// new-vs-new candidate pairs come back sorted by (A, B). A Sync with no
// table growth returns nil. On error (context cancellation included) the
// retained index state is unchanged, so Sync can simply be retried.
func (inc *Incremental) Sync(ctx context.Context) ([]Pair, error) {
	newA, newB := len(inc.s.ta.Records), len(inc.s.tb.Records)
	if newA < inc.lenA || newB < inc.lenB {
		return nil, fmt.Errorf("%w: table shrank under incremental maintenance (A %d->%d, B %d->%d)", ErrBadSpec, inc.lenA, newA, inc.lenB, newB)
	}
	if newA == inc.lenA && newB == inc.lenB {
		return nil, nil
	}
	inc.s.extend()
	var (
		cands  []uint64
		commit func()
		err    error
	)
	switch inc.opt.Mode {
	case ModeToken:
		cands, commit, err = inc.deltaToken(ctx)
	case ModeLSH:
		cands, commit, err = inc.deltaLSH(ctx)
	}
	if err != nil {
		return nil, err
	}
	cands = sortCompact(cands)
	pairs, err := fanOut(ctx, inc.s, inc.opt.Workers, len(cands), func(sc *Scratch, lo, hi int) ([]Pair, error) {
		var out []Pair
		for c := lo; c < hi; c++ {
			if (c-lo)%ctxStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			i, j := int(cands[c]>>32), int(cands[c]&0xffffffff)
			if sim := inc.s.ScoreWith(sc, i, j); sim >= inc.opt.Threshold {
				out = append(out, Pair{A: i, B: j, Sim: sim})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	commit()
	inc.lenA, inc.lenB = newA, newB
	return pairs, nil
}

// initToken builds the retained ModeToken state over the initial tables:
// the frozen document frequencies and the prefix inverted indexes of both
// tables.
func (inc *Incremental) initToken() error {
	tokA, tokB, err := inc.s.blockTokens(inc.opt.Attribute)
	if err != nil {
		return err
	}
	k := inc.opt.MinShared
	inc.df = make([]int32, inc.s.dict.Len())
	for _, toks := range tokA {
		for _, t := range toks {
			inc.df[t]++
		}
	}
	for _, toks := range tokB {
		for _, t := range toks {
			inc.df[t]++
		}
	}
	inc.postA = make([][]int32, inc.s.dict.Len())
	inc.postB = make([][]int32, inc.s.dict.Len())
	for i, toks := range tokA {
		for _, t := range inc.prefix(toks, k) {
			inc.postA[t] = append(inc.postA[t], int32(i))
		}
	}
	for j, toks := range tokB {
		for _, t := range inc.prefix(toks, k) {
			inc.postB[t] = append(inc.postB[t], int32(j))
		}
	}
	return nil
}

// prefix is generateToken's size + prefix filter under the frozen order:
// nil for records below the size floor, otherwise the first len-k+1 tokens
// ordered by (frozen df ascending, id ascending). The order never changes
// once a token exists — later-interned tokens slot in at frequency zero and
// old frequencies are never updated — so prefixes computed at different
// epochs are mutually consistent and the prefix lemma holds across them.
func (inc *Incremental) prefix(toks []int32, k int) []int32 {
	if len(toks) < k {
		return nil
	}
	p := append([]int32(nil), toks...)
	sort.Slice(p, func(x, y int) bool {
		a, b := p[x], p[y]
		if inc.df[a] != inc.df[b] {
			return inc.df[a] < inc.df[b]
		}
		return a < b
	})
	return p[:len(p)-k+1]
}

// deltaToken probes the appended records through the retained prefix
// indexes: each new A record against all of B (old via postB, new via a
// batch-local index), each new B record against old A only — together
// exactly the pairs that involve at least one new record, with no
// double-counting. The retained indexes are only mutated by the returned
// commit, so a failed Sync leaves them at the previous epoch.
func (inc *Incremental) deltaToken(ctx context.Context) (cands []uint64, commit func(), err error) {
	tokA, tokB, err := inc.s.blockTokens(inc.opt.Attribute)
	if err != nil {
		return nil, nil, err
	}
	k := inc.opt.MinShared
	oldA, oldB := inc.lenA, inc.lenB
	newA, newB := len(tokA), len(tokB)
	// Freeze the prefix order over the grown dictionary: tokens interned
	// after construction keep document frequency zero forever.
	if n := inc.s.dict.Len(); n > len(inc.df) {
		inc.df = append(inc.df, make([]int32, n-len(inc.df))...)
		inc.postA = append(inc.postA, make([][]int32, n-len(inc.postA))...)
		inc.postB = append(inc.postB, make([][]int32, n-len(inc.postB))...)
	}
	prefNewA := make([][]int32, newA-oldA)
	for i := oldA; i < newA; i++ {
		prefNewA[i-oldA] = inc.prefix(tokA[i], k)
	}
	prefNewB := make([][]int32, newB-oldB)
	for j := oldB; j < newB; j++ {
		prefNewB[j-oldB] = inc.prefix(tokB[j], k)
	}
	// Batch-local inverted index over the new B prefixes, so new-A probes
	// see new B without mutating the retained postB yet.
	postNewB := make(map[int32][]int32)
	for j := oldB; j < newB; j++ {
		for _, t := range prefNewB[j-oldB] {
			postNewB[t] = append(postNewB[t], int32(j))
		}
	}

	seen := make([]bool, newB)
	touched := make([]int32, 0, 64)
	// New A against all of B (old and new).
	for i := oldA; i < newA; i++ {
		if (i-oldA)%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		touched = touched[:0]
		for _, t := range prefNewA[i-oldA] {
			for _, j := range inc.postB[t] {
				if !seen[j] {
					seen[j] = true
					touched = append(touched, j)
				}
			}
			for _, j := range postNewB[t] {
				if !seen[j] {
					seen[j] = true
					touched = append(touched, j)
				}
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, j := range touched {
			seen[j] = false
			if similarity.IntersectCount(tokA[i], tokB[j]) < k {
				continue
			}
			cands = append(cands, uint64(uint32(i))<<32|uint64(uint32(j)))
		}
	}
	// New B against old A only — new-A×new-B pairs were already found above.
	seenA := make([]bool, oldA)
	for j := oldB; j < newB; j++ {
		if (j-oldB)%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		touched = touched[:0]
		for _, t := range prefNewB[j-oldB] {
			for _, i := range inc.postA[t] {
				if !seenA[i] {
					seenA[i] = true
					touched = append(touched, i)
				}
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, i := range touched {
			seenA[i] = false
			if similarity.IntersectCount(tokA[i], tokB[j]) < k {
				continue
			}
			cands = append(cands, uint64(uint32(i))<<32|uint64(uint32(j)))
		}
	}
	commit = func() {
		for i := oldA; i < newA; i++ {
			for _, t := range prefNewA[i-oldA] {
				inc.postA[t] = append(inc.postA[t], int32(i))
			}
		}
		for j := oldB; j < newB; j++ {
			for _, t := range prefNewB[j-oldB] {
				inc.postB[t] = append(inc.postB[t], int32(j))
			}
		}
	}
	return cands, commit, nil
}

// initLSH builds the retained ModeLSH state over the initial tables: band
// seeds, the verification floor, and both tables' per-band sorted bucket
// entries.
func (inc *Incremental) initLSH(ctx context.Context) error {
	rows, bands := inc.opt.Rows, inc.opt.Bands
	tokA, tokB, err := inc.s.blockTokens(inc.opt.Attribute)
	if err != nil {
		return err
	}
	inc.seeds = lshSeeds(bands)
	inc.floor = inc.opt.MinShared
	if inc.floor < rows {
		inc.floor = rows
	}
	hashes := inc.s.dict.TokenHashes()
	keysA, err := lshBandKeys(ctx, inc.opt.Workers, tokA, hashes, inc.seeds, rows, bands)
	if err != nil {
		return err
	}
	keysB, err := lshBandKeys(ctx, inc.opt.Workers, tokB, hashes, inc.seeds, rows, bands)
	if err != nil {
		return err
	}
	inc.entA = make([][]uint64, bands)
	inc.entB = make([][]uint64, bands)
	for b := 0; b < bands; b++ {
		inc.entA[b] = lshBandEntries(tokA, keysA, rows, bands, b, 0, len(tokA))
		inc.entB[b] = lshBandEntries(tokB, keysB, rows, bands, b, 0, len(tokB))
	}
	return nil
}

// deltaLSH sketches only the appended records and joins them through the
// retained band tables: per band, new-A×old-B, new-A×new-B and old-A×new-B
// — every colliding pair that involves a new record, each verified against
// the shared-token floor inline. The retained tables are only swapped for
// their merged successors by the returned commit.
func (inc *Incremental) deltaLSH(ctx context.Context) (cands []uint64, commit func(), err error) {
	tokA, tokB, err := inc.s.blockTokens(inc.opt.Attribute)
	if err != nil {
		return nil, nil, err
	}
	rows, bands := inc.opt.Rows, inc.opt.Bands
	oldA, oldB := inc.lenA, inc.lenB
	hashes := inc.s.dict.TokenHashes()
	newToksA, newToksB := tokA[oldA:], tokB[oldB:]
	keysNewA, err := lshBandKeys(ctx, inc.opt.Workers, newToksA, hashes, inc.seeds, rows, bands)
	if err != nil {
		return nil, nil, err
	}
	keysNewB, err := lshBandKeys(ctx, inc.opt.Workers, newToksB, hashes, inc.seeds, rows, bands)
	if err != nil {
		return nil, nil, err
	}
	type bandDelta struct {
		pairs            []uint64
		mergedA, mergedB []uint64
	}
	outs, err := parallel.Map(inc.opt.Workers, bands, func(b int) (bandDelta, error) {
		if err := ctx.Err(); err != nil {
			return bandDelta{}, err
		}
		na := lshBandEntries(newToksA, keysNewA, rows, bands, b, oldA, len(newToksA))
		nb := lshBandEntries(newToksB, keysNewB, rows, bands, b, oldB, len(newToksB))
		oa, ob := inc.entA[b], inc.entB[b]
		var pairs []uint64
		pairs = lshJoin(pairs, na, ob, tokA, tokB, inc.floor)
		pairs = lshJoin(pairs, na, nb, tokA, tokB, inc.floor)
		pairs = lshJoin(pairs, oa, nb, tokA, tokB, inc.floor)
		return bandDelta{pairs: pairs, mergedA: mergeSortedU64(oa, na), mergedB: mergeSortedU64(ob, nb)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o.pairs)
	}
	cands = make([]uint64, 0, total)
	for _, o := range outs {
		cands = append(cands, o.pairs...)
	}
	commit = func() {
		for b := 0; b < bands; b++ {
			inc.entA[b] = outs[b].mergedA
			inc.entB[b] = outs[b].mergedB
		}
	}
	return cands, commit, nil
}

// mergeSortedU64 linearly merges two sorted uint64 slices into a new one.
func mergeSortedU64(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
