package blocking

import (
	"errors"
	"math"
	"testing"

	"humo/internal/records"
)

func twoTables() (*records.Table, *records.Table) {
	a := &records.Table{
		Name:       "a",
		Attributes: []string{"title", "venue"},
		Records: []records.Record{
			{ID: 0, EntityID: 1, Values: []string{"entity resolution framework", "icde"}},
			{ID: 1, EntityID: 2, Values: []string{"stream processing engine", "vldb"}},
			{ID: 2, EntityID: 3, Values: []string{"graph traversal index", "sigmod"}},
		},
	}
	b := &records.Table{
		Name:       "b",
		Attributes: []string{"title", "venue"},
		Records: []records.Record{
			{ID: 0, EntityID: 1, Values: []string{"entity resolution framework", "icde"}},
			{ID: 1, EntityID: 4, Values: []string{"entirely unrelated paper", "www"}},
			{ID: 2, EntityID: 2, Values: []string{"stream processing system", "vldb"}},
		},
	}
	return a, b
}

func defaultSpecs() []AttributeSpec {
	return []AttributeSpec{
		{Attribute: "title", Kind: KindJaccard, Weight: 3},
		{Attribute: "venue", Kind: KindJaroWinkler, Weight: 1},
	}
}

func TestNewScorerValidation(t *testing.T) {
	a, b := twoTables()
	if _, err := NewScorer(a, b, nil); !errors.Is(err, ErrBadSpec) {
		t.Error("no specs should fail")
	}
	if _, err := NewScorer(a, b, []AttributeSpec{{Attribute: "missing", Kind: KindJaccard, Weight: 1}}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := NewScorer(a, b, []AttributeSpec{{Attribute: "title", Kind: KindJaccard, Weight: -1}}); !errors.Is(err, ErrBadSpec) {
		t.Error("negative weight should fail")
	}
	if _, err := NewScorer(a, b, []AttributeSpec{{Attribute: "title", Kind: KindJaccard, Weight: 0}}); !errors.Is(err, ErrBadSpec) {
		t.Error("zero weight sum should fail")
	}
	bad := &records.Table{Name: "bad"}
	if _, err := NewScorer(bad, b, defaultSpecs()); err == nil {
		t.Error("invalid table should fail")
	}
}

func TestScoreIdenticalAndDisjoint(t *testing.T) {
	a, b := twoTables()
	s, err := NewScorer(a, b, defaultSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score(0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical records score %v, want 1", got)
	}
	if got := s.Score(2, 1); got > 0.5 {
		t.Errorf("unrelated records score %v, too high", got)
	}
	feats := s.Features(0, 2)
	if len(feats) != 2 {
		t.Fatalf("feature dim %d", len(feats))
	}
	for _, f := range feats {
		if f < 0 || f > 1 {
			t.Errorf("feature %v out of range", f)
		}
	}
}

func TestAllKindsScore(t *testing.T) {
	a, b := twoTables()
	for _, kind := range []Kind{KindJaccard, KindJaroWinkler, KindLevenshtein, KindCosine} {
		s, err := NewScorer(a, b, []AttributeSpec{{Attribute: "title", Kind: kind, Weight: 1}})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := s.Score(0, 0); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v: identical score %v", kind, got)
		}
		if got := s.Score(0, 1); got < 0 || got >= 1 {
			t.Errorf("%v: different score %v out of [0,1)", kind, got)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindJaccard: "jaccard", KindJaroWinkler: "jarowinkler",
		KindLevenshtein: "levenshtein", KindCosine: "cosine",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind should format as Kind(n)")
	}
}

func TestCrossProduct(t *testing.T) {
	a, b := twoTables()
	s, err := NewScorer(a, b, defaultSpecs())
	if err != nil {
		t.Fatal(err)
	}
	all := CrossProduct(s, 0)
	if len(all) != 9 {
		t.Fatalf("threshold 0 should keep all 9 pairs, got %d", len(all))
	}
	some := CrossProduct(s, 0.5)
	if len(some) >= 9 || len(some) == 0 {
		t.Fatalf("threshold 0.5 kept %d pairs", len(some))
	}
	for _, p := range some {
		if p.Sim < 0.5 {
			t.Errorf("pair below threshold kept: %+v", p)
		}
	}
}

func TestTokenBlocked(t *testing.T) {
	a, b := twoTables()
	s, err := NewScorer(a, b, defaultSpecs())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := TokenBlocked(s, "title", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs sharing >= 2 title tokens: (0,0) [3 shared], (1,2) [2 shared].
	if len(pairs) != 2 {
		t.Fatalf("TokenBlocked found %d pairs, want 2: %+v", len(pairs), pairs)
	}
	found := map[[2]int]bool{}
	for _, p := range pairs {
		found[[2]int{p.A, p.B}] = true
	}
	if !found[[2]int{0, 0}] || !found[[2]int{1, 2}] {
		t.Errorf("TokenBlocked pairs wrong: %+v", pairs)
	}
	// Candidate generation must agree with cross product + shared-token
	// post-filter on the scores it emits.
	for _, p := range pairs {
		if want := s.Score(p.A, p.B); p.Sim != want {
			t.Errorf("pair (%d,%d) sim %v, want %v", p.A, p.B, p.Sim, want)
		}
	}
	if _, err := TokenBlocked(s, "title", 0, 0); !errors.Is(err, ErrBadSpec) {
		t.Error("minShared=0 should fail")
	}
	if _, err := TokenBlocked(s, "missing", 1, 0); err == nil {
		t.Error("missing attribute should fail")
	}
}

func TestTokenBlockedSubsetOfCrossProduct(t *testing.T) {
	a, b := twoTables()
	s, _ := NewScorer(a, b, defaultSpecs())
	cross := CrossProduct(s, 0.3)
	blocked, err := TokenBlocked(s, "title", 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	inCross := map[[2]int]float64{}
	for _, p := range cross {
		inCross[[2]int{p.A, p.B}] = p.Sim
	}
	for _, p := range blocked {
		if sim, ok := inCross[[2]int{p.A, p.B}]; !ok || sim != p.Sim {
			t.Errorf("blocked pair (%d,%d) not consistent with cross product", p.A, p.B)
		}
	}
}

func TestSortedNeighborhood(t *testing.T) {
	a, b := twoTables()
	s, _ := NewScorer(a, b, defaultSpecs())
	pairs, err := SortedNeighborhood(s, "title", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The identical titles sort adjacently, so (0,0) must be found.
	found := false
	for _, p := range pairs {
		if p.A == 0 && p.B == 0 {
			found = true
		}
	}
	if !found {
		t.Error("sorted neighborhood missed the identical pair")
	}
	// No duplicates.
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.A, p.B}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
	if _, err := SortedNeighborhood(s, "title", 1, 0); !errors.Is(err, ErrBadSpec) {
		t.Error("window < 2 should fail")
	}
	if _, err := SortedNeighborhood(s, "missing", 3, 0); err == nil {
		t.Error("missing attribute should fail")
	}
}

func TestDistinctValueSpecs(t *testing.T) {
	a, b := twoTables()
	specs, err := DistinctValueSpecs(a, b, []AttributeSpec{
		{Attribute: "title", Kind: KindJaccard},
		{Attribute: "venue", Kind: KindJaroWinkler},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Titles: 5 distinct across both tables; venues: 4 distinct.
	if specs[0].Weight != 5 {
		t.Errorf("title weight = %v, want 5", specs[0].Weight)
	}
	if specs[1].Weight != 4 {
		t.Errorf("venue weight = %v, want 4", specs[1].Weight)
	}
	if _, err := DistinctValueSpecs(a, b, []AttributeSpec{{Attribute: "nope"}}); err == nil {
		t.Error("missing attribute should fail")
	}
}
