package datagen

import (
	"errors"
	"testing"
)

// smallDS returns a scaled-down DS configuration for fast tests.
func smallDS(seed int64) DSConfig {
	return DSConfig{
		Entities:    300,
		DupFrac:     0.85,
		MaxDups:     3,
		Filler:      1500,
		RelatedFrac: 0.3,
		Threshold:   0.2,
		MinShared:   2,
		Seed:        seed,
	}
}

// smallAB returns a scaled-down AB configuration for fast tests.
func smallAB(seed int64) ABConfig {
	return ABConfig{
		Entities:    200,
		ExtraA:      10,
		ExtraB:      12,
		HardFrac:    0.55,
		SiblingFrac: 0.3,
		Threshold:   0.05,
		Seed:        seed,
	}
}

func TestDSLikeValidation(t *testing.T) {
	bad := []DSConfig{
		{},
		{Entities: 100, MaxDups: 0, MinShared: 1},
		{Entities: 100, MaxDups: 1, MinShared: 0},
		{Entities: 100, MaxDups: 1, MinShared: 1, DupFrac: 2},
		{Entities: 100, MaxDups: 1, MinShared: 1, RelatedFrac: -1},
		{Entities: 100, MaxDups: 1, MinShared: 1, Threshold: 1},
	}
	for _, cfg := range bad {
		if _, err := DSLike(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestABLikeValidation(t *testing.T) {
	bad := []ABConfig{
		{},
		{Entities: 100, HardFrac: -0.1},
		{Entities: 100, SiblingFrac: 1.5},
		{Entities: 100, Threshold: 1},
		{Entities: 100, ExtraA: -1},
	}
	for _, cfg := range bad {
		if _, err := ABLike(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestDSLikeStructure(t *testing.T) {
	ds, err := DSLike(smallDS(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.A.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ds.B.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.A.Len() != 300 {
		t.Errorf("DBLP table has %d records, want 300", ds.A.Len())
	}
	if len(ds.Pairs) == 0 {
		t.Fatal("no candidate pairs generated")
	}
	if ds.MatchCount() == 0 {
		t.Fatal("no matching pairs generated")
	}
	// Every candidate is above the blocking threshold.
	for _, p := range ds.Pairs {
		if p.Sim < 0.2-1e-9 || p.Sim > 1+1e-9 {
			t.Fatalf("pair similarity %v outside [threshold, 1]", p.Sim)
		}
	}
	// Pair IDs index Candidates 1:1.
	for i, p := range ds.Pairs {
		if p.ID != i {
			t.Fatalf("pair %d has ID %d", i, p.ID)
		}
	}
}

func TestDSLikeDeterministic(t *testing.T) {
	a, err := DSLike(smallDS(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DSLike(smallDS(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs between runs", i)
		}
	}
	c, err := DSLike(smallDS(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Pairs) == len(a.Pairs) && c.MatchCount() == a.MatchCount() {
		same := true
		for i := range c.Pairs {
			if c.Pairs[i] != a.Pairs[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

// TestDSLikeShape verifies the Fig. 4a characteristic: matching pairs are
// concentrated at high similarity and the match proportion is (coarsely)
// monotone increasing.
func TestDSLikeShape(t *testing.T) {
	ds, err := DSLike(smallDS(2))
	if err != nil {
		t.Fatal(err)
	}
	var lowM, highM int
	for _, p := range ds.Pairs {
		if !p.Match {
			continue
		}
		if p.Sim >= 0.5 {
			highM++
		} else {
			lowM++
		}
	}
	if highM <= lowM {
		t.Errorf("DS matches should concentrate above 0.5: high=%d low=%d", highM, lowM)
	}
	checkCoarseMonotone(t, ds.Pairs, 5)
}

// TestABLikeShape verifies the Fig. 4b characteristic: many matching pairs
// at medium/low similarities and extreme class imbalance.
func TestABLikeShape(t *testing.T) {
	ab, err := ABLike(smallAB(3))
	if err != nil {
		t.Fatal(err)
	}
	matches := ab.MatchCount()
	if matches == 0 {
		t.Fatal("no matches")
	}
	rate := float64(matches) / float64(len(ab.Pairs))
	if rate > 0.05 {
		t.Errorf("AB match rate %.4f too high; paper's is ~0.0035", rate)
	}
	var below, above int
	for _, p := range ab.Pairs {
		if !p.Match {
			continue
		}
		if p.Sim < 0.5 {
			below++
		} else {
			above++
		}
	}
	if below == 0 {
		t.Error("AB should have matches below similarity 0.5")
	}
	checkCoarseMonotone(t, ab.Pairs, 5)
}

// checkCoarseMonotone asserts the match proportion over `bands` equal-width
// similarity bands never drops by more than 0.15 from one band to the next —
// the statistical monotonicity HUMO's baseline relies on.
func checkCoarseMonotone(t *testing.T, pairs []LabeledPair, bands int) {
	t.Helper()
	lo, hi := 1.0, 0.0
	for _, p := range pairs {
		if p.Sim < lo {
			lo = p.Sim
		}
		if p.Sim > hi {
			hi = p.Sim
		}
	}
	w := (hi - lo) / float64(bands)
	if w <= 0 {
		return
	}
	m := make([]int, bands)
	n := make([]int, bands)
	for _, p := range pairs {
		b := int((p.Sim - lo) / w)
		if b >= bands {
			b = bands - 1
		}
		n[b]++
		if p.Match {
			m[b]++
		}
	}
	prev := 0.0
	for b := 0; b < bands; b++ {
		if n[b] < 20 {
			continue
		}
		prop := float64(m[b]) / float64(n[b])
		if prop < prev-0.15 {
			t.Errorf("band %d proportion %.3f drops below previous %.3f", b, prop, prev)
		}
		prev = prop
	}
}

func TestERDatasetFeatures(t *testing.T) {
	ds, err := DSLike(smallDS(4))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := ds.Features(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 3 { // title, authors, venue
		t.Fatalf("feature dim = %d, want 3", len(feats))
	}
	for i, f := range feats {
		if f < 0 || f > 1 {
			t.Errorf("feature %d = %v out of [0,1]", i, f)
		}
	}
	if _, err := ds.Features(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := ds.Features(len(ds.Candidates)); err == nil {
		t.Error("out-of-range id should fail")
	}
}

func TestERDatasetTruthAndCorePairs(t *testing.T) {
	ds, err := DSLike(smallDS(5))
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Truth()
	cp := ds.CorePairs()
	if len(truth) != len(ds.Pairs) || len(cp) != len(ds.Pairs) {
		t.Fatal("size mismatch")
	}
	for i, p := range ds.Pairs {
		if truth[p.ID] != p.Match {
			t.Fatalf("truth mismatch at %d", i)
		}
		if cp[i].ID != p.ID || cp[i].Sim != p.Sim {
			t.Fatalf("core pair mismatch at %d", i)
		}
	}
}
