package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"humo/internal/blocking"
	"humo/internal/records"
)

// ABConfig parameterizes the simulated Abt-Buy dataset. The real AB workload
// (paper §VIII-A) matches 1,081 Abt.com products against 1,092 Buy.com
// products; after blocking at aggregated similarity 0.05 it holds 313,040
// pairs of which only 1,085 match, and matching pairs spread into medium and
// low similarities (Fig. 4b) — the challenging workload. The simulation
// keeps that shape with heavily paraphrased product descriptions and
// frequently missing model codes.
type ABConfig struct {
	// Entities is the number of products listed on both sides (the
	// matching pairs).
	Entities int
	// ExtraA and ExtraB are unmatched products present on a single side.
	ExtraA, ExtraB int
	// HardFrac is the fraction of matched products whose second listing is
	// corrupted aggressively (landing at low similarity).
	HardFrac float64
	// SiblingFrac is the fraction of products that spawn a *sibling* on the
	// other side: same brand and category, different model — a different
	// product that scores at medium similarity (the hard non-matches).
	SiblingFrac float64
	// Threshold is the blocking threshold on aggregated similarity.
	Threshold float64
	// Seed drives deterministic generation.
	Seed int64
}

// DefaultABConfig mirrors the real dataset's scale.
func DefaultABConfig() ABConfig {
	return ABConfig{
		Entities:    1050,
		ExtraA:      31,
		ExtraB:      42,
		HardFrac:    0.55,
		SiblingFrac: 0.3,
		Threshold:   0.05,
		Seed:        20181009,
	}
}

func (c ABConfig) validate() error {
	if c.Entities <= 0 || c.ExtraA < 0 || c.ExtraB < 0 {
		return fmt.Errorf("%w: ABConfig %+v", ErrBadConfig, c)
	}
	if c.HardFrac < 0 || c.HardFrac > 1 {
		return fmt.Errorf("%w: HardFrac=%v", ErrBadConfig, c.HardFrac)
	}
	if c.SiblingFrac < 0 || c.SiblingFrac > 1 {
		return fmt.Errorf("%w: SiblingFrac=%v", ErrBadConfig, c.SiblingFrac)
	}
	if c.Threshold < 0 || c.Threshold >= 1 {
		return fmt.Errorf("%w: Threshold=%v", ErrBadConfig, c.Threshold)
	}
	return nil
}

// product is the clean form of one product entity.
type product struct {
	entity   int
	category int
	brand    string
	model    string
	nameTail []string // descriptive words in the name besides brand/model
	desc     []string
}

func genProduct(rng *rand.Rand, entity int) product {
	cat := rng.Intn(len(productCategories))
	c := productCategories[cat]
	model := fmt.Sprintf("%c%c%d", 'a'+rng.Intn(26), 'a'+rng.Intn(26), 1000+rng.Intn(9000))
	nameTail := []string{pick(rng, c.nouns)}
	nameTail = append(nameTail, sampleDistinct(rng, c.words, 1+rng.Intn(2))...)
	nDesc := 8 + rng.Intn(10)
	if nDesc > len(c.words) {
		nDesc = len(c.words)
	}
	desc := sampleDistinct(rng, c.words, nDesc)
	desc = append(desc, sampleDistinct(rng, productAdjectives, 2+rng.Intn(3))...)
	return product{
		entity:   entity,
		category: cat,
		brand:    pick(rng, productBrands),
		model:    model,
		nameTail: nameTail,
		desc:     desc,
	}
}

func (p product) nameStr(includeModel bool) string {
	parts := []string{p.brand}
	if includeModel {
		parts = append(parts, p.model)
	}
	parts = append(parts, p.nameTail...)
	return strings.Join(parts, " ")
}

func (p product) descStr() string { return joinWords(p.desc) }

// buyListing derives the second marketplace's listing of the same product.
// Easy listings keep the model code and most description words; hard ones
// lose the model, heavily paraphrase the description and abbreviate, which
// drags their pair similarity down to the low band of Fig. 4b.
func buyListing(c *corruptor, p product, hard bool) (name, desc string) {
	catWords := productCategories[p.category].words
	if hard {
		nameWords := c.dropWords(p.nameTail, 0.45)
		nameWords = c.replaceWords(nameWords, catWords, 0.3)
		name = p.brand + " " + joinWords(nameWords)
		if c.rng.Float64() < 0.25 {
			name = joinWords(nameWords) // even the brand is missing
		}
		words := c.dropWords(p.desc, 0.55)
		words = c.replaceWords(words, catWords, 0.45)
		words = c.abbrevWords(words, 0.15)
		desc = joinWords(words)
		return name, desc
	}
	includeModel := c.rng.Float64() < 0.6
	nameWords := c.dropWords(p.nameTail, 0.2)
	name = p.brand + " "
	if includeModel {
		name += p.model + " "
	}
	name += joinWords(nameWords)
	words := c.dropWords(p.desc, 0.3)
	words = c.replaceWords(words, catWords, 0.15)
	words = c.swapWords(words, 0.5)
	desc = joinWords(words)
	return name, desc
}

// sibling derives a different product of the same brand and category: a new
// model code and partially re-drawn name/description words. Sibling pairs
// are the hard non-matches of product matching.
func sibling(rng *rand.Rand, p product, entity int) product {
	c := productCategories[p.category]
	model := fmt.Sprintf("%c%c%d", 'a'+rng.Intn(26), 'a'+rng.Intn(26), 1000+rng.Intn(9000))
	nameTail := append([]string(nil), p.nameTail...)
	if len(nameTail) > 1 {
		nameTail[len(nameTail)-1] = pick(rng, c.words)
	}
	keep := len(p.desc) / 2
	desc := append([]string(nil), sampleDistinct(rng, p.desc, keep)...)
	desc = append(desc, sampleDistinct(rng, c.words, 4)...)
	desc = append(desc, sampleDistinct(rng, productAdjectives, 2)...)
	return product{
		entity:   entity,
		category: p.category,
		brand:    p.brand,
		model:    model,
		nameTail: nameTail,
		desc:     desc,
	}
}

var abAttributes = []string{"name", "description"}

// ABLike generates the simulated Abt-Buy workload: cross-product candidate
// generation over the two product tables with aggregated Jaccard(name) and
// Jaccard(description) similarity, distinct-value weights and the paper's
// 0.05 blocking threshold.
func ABLike(cfg ABConfig) (*ERDataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &corruptor{rng: rng}

	abt := &records.Table{Name: "abt", Attributes: abAttributes}
	buy := &records.Table{Name: "buy", Attributes: abAttributes}

	products := make([]product, cfg.Entities)
	for i := 0; i < cfg.Entities; i++ {
		products[i] = genProduct(rng, i)
		p := products[i]
		abt.Records = append(abt.Records, records.Record{
			ID:       i,
			EntityID: i,
			Values:   []string{p.nameStr(true), p.descStr()},
		})
		name, desc := buyListing(c, p, rng.Float64() < cfg.HardFrac)
		buy.Records = append(buy.Records, records.Record{
			ID:       i,
			EntityID: i,
			Values:   []string{name, desc},
		})
	}
	// Siblings: same brand/category as an existing product but a different
	// entity, listed on Buy only. They score at medium similarity against
	// their originals.
	nextEntity := 10 * (cfg.Entities + cfg.ExtraA + cfg.ExtraB)
	nextBuyID := cfg.Entities
	for _, p := range products {
		if rng.Float64() >= cfg.SiblingFrac {
			continue
		}
		sib := sibling(rng, p, nextEntity)
		nextEntity++
		name, desc := buyListing(c, sib, rng.Float64() < cfg.HardFrac)
		buy.Records = append(buy.Records, records.Record{
			ID:       nextBuyID,
			EntityID: sib.entity,
			Values:   []string{name, desc},
		})
		nextBuyID++
	}
	for i := 0; i < cfg.ExtraA; i++ {
		p := genProduct(rng, nextEntity)
		nextEntity++
		abt.Records = append(abt.Records, records.Record{
			ID:       cfg.Entities + i,
			EntityID: p.entity,
			Values:   []string{p.nameStr(true), p.descStr()},
		})
	}
	for i := 0; i < cfg.ExtraB; i++ {
		p := genProduct(rng, nextEntity)
		nextEntity++
		name, desc := buyListing(c, p, rng.Float64() < cfg.HardFrac)
		buy.Records = append(buy.Records, records.Record{
			ID:       nextBuyID,
			EntityID: p.entity,
			Values:   []string{name, desc},
		})
		nextBuyID++
	}

	specs, err := blocking.DistinctValueSpecs(abt, buy, []blocking.AttributeSpec{
		{Attribute: "name", Kind: blocking.KindJaccard},
		{Attribute: "description", Kind: blocking.KindJaccard},
	})
	if err != nil {
		return nil, err
	}
	scorer, err := blocking.NewScorer(abt, buy, specs)
	if err != nil {
		return nil, err
	}
	cands := blocking.CrossProduct(scorer, cfg.Threshold)
	return &ERDataset{
		Name:       "AB",
		A:          abt,
		B:          buy,
		Scorer:     scorer,
		Candidates: cands,
		Pairs:      labelCandidates(abt, buy, cands),
	}, nil
}
