// Package datagen generates the evaluation workloads of the paper's §VIII:
// the synthetic workloads driven by the logistic match-proportion function
// (Eq. 22, parameters tau and sigma), and simulated stand-ins for the two
// real datasets (DBLP-Scholar and Abt-Buy) built from noisy record
// generation, similarity aggregation and blocking.
package datagen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"humo/internal/core"
)

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("datagen: invalid configuration")

// LabeledPair couples an instance pair with its hidden ground-truth label.
// Generators return LabeledPairs; Split separates the machine-visible part
// from the oracle's truth.
type LabeledPair struct {
	ID    int
	Sim   float64
	Match bool
}

// LogisticProportion evaluates the paper's Eq. 22 match-proportion function
// 0.95 / (1 + e^(-tau (v - 0.55))).
func LogisticProportion(tau, v float64) float64 {
	return 0.95 / (1 + math.Exp(-tau*(v-0.55)))
}

// LogisticConfig parameterizes the synthetic workload generator.
type LogisticConfig struct {
	// N is the number of instance pairs.
	N int
	// Tau is the steepness of the logistic curve; smaller values make the
	// workload more challenging (§VIII-A).
	Tau float64
	// Sigma is the standard deviation of per-subset perturbations of the
	// match proportion; larger values add distribution irregularity and at
	// ~0.5 break the monotonicity assumption (Fig. 10).
	Sigma float64
	// SubsetSize is the band granularity at which Sigma perturbations
	// apply; 0 selects core.DefaultSubsetSize so irregularity acts at the
	// same granularity HUMO partitions at.
	SubsetSize int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c LogisticConfig) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("%w: N=%d", ErrBadConfig, c.N)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("%w: Tau=%v", ErrBadConfig, c.Tau)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("%w: Sigma=%v", ErrBadConfig, c.Sigma)
	}
	if c.SubsetSize < 0 {
		return fmt.Errorf("%w: SubsetSize=%d", ErrBadConfig, c.SubsetSize)
	}
	return nil
}

// Logistic generates a synthetic ER workload: pair similarities uniform on
// [0,1]; each consecutive similarity band of SubsetSize pairs draws a
// proportion perturbation scaled by the local binomial spread,
// Sigma * eps * 2*sqrt(p0(1-p0)) with eps ~ N(0,1); each pair is a match
// with probability clamp(LogisticProportion(Tau, v) + perturbation, 0, 1).
// Scaling by the proportion spread keeps the irregularity meaningful across
// the curve — a proportion near 0 or 1 cannot fluctuate by ±0.5 — while at
// Sigma = 0.5 the mid-curve bands still swing hard enough to break the
// monotonicity assumption (the Fig. 10 regime). The result is sorted by
// similarity with ids equal to sorted positions.
func Logistic(cfg LogisticConfig) ([]LabeledPair, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SubsetSize == 0 {
		cfg.SubsetSize = core.DefaultSubsetSize
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sims := make([]float64, cfg.N)
	for i := range sims {
		sims[i] = rng.Float64()
	}
	sort.Float64s(sims)
	pairs := make([]LabeledPair, cfg.N)
	offset := 0.0
	for i, v := range sims {
		if i%cfg.SubsetSize == 0 {
			offset = 0
			if cfg.Sigma > 0 {
				p0 := LogisticProportion(cfg.Tau, v)
				offset = rng.NormFloat64() * cfg.Sigma * 2 * math.Sqrt(p0*(1-p0))
			}
		}
		p := LogisticProportion(cfg.Tau, v) + offset
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		pairs[i] = LabeledPair{ID: i, Sim: v, Match: rng.Float64() < p}
	}
	return pairs, nil
}

// Split separates the machine-visible pairs from the oracle ground truth.
func Split(pairs []LabeledPair) ([]core.Pair, map[int]bool) {
	out := make([]core.Pair, len(pairs))
	truth := make(map[int]bool, len(pairs))
	for i, p := range pairs {
		out[i] = core.Pair{ID: p.ID, Sim: p.Sim}
		truth[p.ID] = p.Match
	}
	return out, truth
}

// TruthSlice returns ground truth ordered by ascending similarity (ties by
// id), aligned with core.Workload's sorted pair positions.
func TruthSlice(pairs []LabeledPair) []bool {
	sorted := make([]LabeledPair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Sim != sorted[j].Sim {
			return sorted[i].Sim < sorted[j].Sim
		}
		return sorted[i].ID < sorted[j].ID
	})
	out := make([]bool, len(sorted))
	for i, p := range sorted {
		out[i] = p.Match
	}
	return out
}

// MatchCount returns the number of matching pairs.
func MatchCount(pairs []LabeledPair) int {
	n := 0
	for _, p := range pairs {
		if p.Match {
			n++
		}
	}
	return n
}

// Histogram buckets the matching pairs of a workload by similarity, the
// series plotted in the paper's Fig. 4. Bucket i covers
// [lo + i*w, lo + (i+1)*w) over [lo, hi] with w = (hi-lo)/buckets.
func Histogram(pairs []LabeledPair, lo, hi float64, buckets int) ([]int, error) {
	if buckets <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: histogram [%v,%v] x %d", ErrBadConfig, lo, hi, buckets)
	}
	out := make([]int, buckets)
	w := (hi - lo) / float64(buckets)
	for _, p := range pairs {
		if !p.Match || p.Sim < lo || p.Sim > hi {
			continue
		}
		b := int((p.Sim - lo) / w)
		if b >= buckets {
			b = buckets - 1
		}
		out[b]++
	}
	return out, nil
}
