package datagen

import (
	"fmt"
	"math/rand"

	"humo/internal/blocking"
	"humo/internal/records"
)

// DSConfig parameterizes the simulated DBLP-Scholar dataset. The real DS
// workload (paper §VIII-A) matches 2,616 clean DBLP publications against
// 64,263 scraped Google Scholar entries; after blocking at aggregated
// similarity 0.2 it holds 100,077 pairs of which 5,267 match, with matching
// pairs concentrated at high similarities (Fig. 4a). The simulation keeps
// that shape: clean records on one side, lightly corrupted duplicates plus
// same-topic fillers on the other.
type DSConfig struct {
	// Entities is the number of clean DBLP publications.
	Entities int
	// DupFrac is the fraction of entities that have Scholar duplicates.
	DupFrac float64
	// MaxDups is the maximum noisy Scholar copies per duplicated entity.
	MaxDups int
	// Filler is the number of Scholar-only publications (non-matches).
	Filler int
	// RelatedFrac is the fraction of entities that also have a *related*
	// Scholar publication: same authors and venue, roughly half the title
	// words — a different real-world paper (e.g. the journal version of
	// different work by the same group). These are the workload's hard
	// non-matches, landing at medium similarity.
	RelatedFrac float64
	// Threshold is the blocking threshold on aggregated similarity.
	Threshold float64
	// MinShared is the token-blocking minimum shared title tokens.
	MinShared int
	// Seed drives deterministic generation.
	Seed int64
}

// DefaultDSConfig returns the configuration used by the experiment harness:
// scaled to roughly the real dataset's workload shape while staying
// laptop-friendly.
func DefaultDSConfig() DSConfig {
	return DSConfig{
		Entities:    2600,
		DupFrac:     0.85,
		MaxDups:     3,
		Filler:      42000,
		RelatedFrac: 0.3,
		Threshold:   0.2,
		MinShared:   2,
		Seed:        20180417,
	}
}

func (c DSConfig) validate() error {
	if c.Entities <= 0 || c.Filler < 0 || c.MaxDups < 1 {
		return fmt.Errorf("%w: DSConfig %+v", ErrBadConfig, c)
	}
	if c.DupFrac < 0 || c.DupFrac > 1 {
		return fmt.Errorf("%w: DupFrac=%v", ErrBadConfig, c.DupFrac)
	}
	if c.RelatedFrac < 0 || c.RelatedFrac > 1 {
		return fmt.Errorf("%w: RelatedFrac=%v", ErrBadConfig, c.RelatedFrac)
	}
	if c.Threshold < 0 || c.Threshold >= 1 {
		return fmt.Errorf("%w: Threshold=%v", ErrBadConfig, c.Threshold)
	}
	if c.MinShared < 1 {
		return fmt.Errorf("%w: MinShared=%d", ErrBadConfig, c.MinShared)
	}
	return nil
}

// publication is the clean form of one bibliographic entity.
type publication struct {
	entity  int
	topic   int
	title   []string
	authors []author
	venue   venue
}

type author struct{ first, last string }

func genPublication(rng *rand.Rand, entity int) publication {
	topic := rng.Intn(len(topicWords))
	nTopical := 3 + rng.Intn(3) // 3-5 topical words
	nGeneral := 2 + rng.Intn(3) // 2-4 general words
	title := make([]string, 0, nTopical+nGeneral)
	title = append(title, sampleDistinct(rng, topicWords[topic], nTopical)...)
	title = append(title, sampleDistinct(rng, generalTitleWords, nGeneral)...)
	nAuthors := 1 + rng.Intn(4)
	authors := make([]author, nAuthors)
	for i := range authors {
		authors[i] = author{first: pick(rng, firstNames), last: pick(rng, lastNames)}
	}
	return publication{
		entity:  entity,
		topic:   topic,
		title:   title,
		authors: authors,
		venue:   pick(rng, venues),
	}
}

func (p publication) titleStr() string { return joinWords(p.title) }

func (p publication) authorsStr(initials bool) string {
	var b []byte
	for i, a := range p.authors {
		if i > 0 {
			b = append(b, ' ')
		}
		first := a.first
		if initials {
			first = initialize(first)
		}
		b = append(b, first...)
		b = append(b, ' ')
		b = append(b, a.last...)
	}
	return string(b)
}

// scholarCopy derives a noisy Scholar record from a clean publication:
// light word drops and abbreviations, author initials, often an abbreviated
// venue and rare typos — enough to move matches off similarity 1.0 while
// keeping most of them high (the Fig. 4a shape).
func scholarCopy(c *corruptor, p publication) (title, authors, ven string) {
	words := c.dropWords(p.title, 0.16)
	words = c.abbrevWords(words, 0.1)
	words = c.swapWords(words, 0.3)
	title = c.typos(joinWords(words), 0.004)
	authors = p.authorsStr(c.rng.Float64() < 0.5)
	if c.rng.Float64() < 0.25 {
		// Scholar frequently truncates long author lists.
		cut := publication{authors: p.authors[:1+c.rng.Intn(len(p.authors))]}
		authors = cut.authorsStr(c.rng.Float64() < 0.5)
	}
	ven = p.venue.full
	if c.rng.Float64() < 0.5 {
		ven = p.venue.abbrev
	}
	return title, authors, ven
}

// relatedPublication derives a *different* paper by the same authors: it
// keeps the author list and venue, reuses about half the title words of the
// original and draws the rest fresh from the same topic. Such pairs are the
// hard non-matches of bibliographic matching.
func relatedPublication(rng *rand.Rand, p publication, entity int) publication {
	keep := len(p.title) / 2
	title := append([]string(nil), sampleDistinct(rng, p.title, keep)...)
	title = append(title, sampleDistinct(rng, topicWords[p.topic], 2)...)
	title = append(title, sampleDistinct(rng, generalTitleWords, 2)...)
	// Same research group, overlapping but not identical author list.
	nKeep := (len(p.authors) + 1) / 2
	authors := append([]author(nil), sampleDistinct(rng, p.authors, nKeep)...)
	authors = append(authors, author{first: pick(rng, firstNames), last: pick(rng, lastNames)})
	return publication{
		entity:  entity,
		topic:   p.topic,
		title:   title,
		authors: authors,
		venue:   p.venue,
	}
}

var dsAttributes = []string{"title", "authors", "venue"}

// DSLike generates the simulated DBLP-Scholar workload: a clean DBLP table,
// a Scholar table of noisy duplicates plus same-topic fillers, token
// blocking on the title and weighted aggregation of Jaccard(title),
// Jaccard(authors) and JaroWinkler(venue) with distinct-value weights —
// the paper's exact recipe (§VIII-A).
func DSLike(cfg DSConfig) (*ERDataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &corruptor{rng: rng}

	dblp := &records.Table{Name: "dblp", Attributes: dsAttributes}
	scholar := &records.Table{Name: "scholar", Attributes: dsAttributes}

	pubs := make([]publication, cfg.Entities)
	for i := range pubs {
		pubs[i] = genPublication(rng, i)
		dblp.Records = append(dblp.Records, records.Record{
			ID:       i,
			EntityID: i,
			Values:   []string{pubs[i].titleStr(), pubs[i].authorsStr(false), pubs[i].venue.full},
		})
	}
	next := 0
	addScholar := func(entity int, title, authors, ven string) {
		scholar.Records = append(scholar.Records, records.Record{
			ID:       next,
			EntityID: entity,
			Values:   []string{title, authors, ven},
		})
		next++
	}
	for _, p := range pubs {
		if rng.Float64() >= cfg.DupFrac {
			continue
		}
		copies := 1 + rng.Intn(cfg.MaxDups)
		for k := 0; k < copies; k++ {
			title, authors, ven := scholarCopy(c, p)
			addScholar(p.entity, title, authors, ven)
		}
	}
	// Related publications: same authors/venue, half-overlapping titles —
	// distinct entities that score at medium similarity.
	relEntity := cfg.Entities + cfg.Filler
	for _, p := range pubs {
		if rng.Float64() >= cfg.RelatedFrac {
			continue
		}
		rel := relatedPublication(rng, p, relEntity)
		relEntity++
		title, authors, ven := scholarCopy(c, rel)
		addScholar(rel.entity, title, authors, ven)
	}
	// Fillers: publications of distinct entities, drawn from the same topic
	// vocabulary so they collide with DBLP titles on tokens.
	for f := 0; f < cfg.Filler; f++ {
		p := genPublication(rng, cfg.Entities+f)
		title, authors, ven := scholarCopy(c, p)
		addScholar(p.entity, title, authors, ven)
	}

	specs, err := blocking.DistinctValueSpecs(dblp, scholar, []blocking.AttributeSpec{
		{Attribute: "title", Kind: blocking.KindJaccard},
		{Attribute: "authors", Kind: blocking.KindJaccard},
		{Attribute: "venue", Kind: blocking.KindJaroWinkler},
	})
	if err != nil {
		return nil, err
	}
	scorer, err := blocking.NewScorer(dblp, scholar, specs)
	if err != nil {
		return nil, err
	}
	cands, err := blocking.TokenBlocked(scorer, "title", cfg.MinShared, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	return &ERDataset{
		Name:       "DS",
		A:          dblp,
		B:          scholar,
		Scorer:     scorer,
		Candidates: cands,
		Pairs:      labelCandidates(dblp, scholar, cands),
	}, nil
}
