package datagen

// Vocabularies for the simulated DBLP-Scholar (bibliographic) and Abt-Buy
// (product) datasets. Words are synthetic but realistic enough to exercise
// the tokenizers, similarity measures and blocking exactly as real data
// would; what matters for HUMO is the resulting match-proportion-vs-
// similarity curve, not the prose.

// generalTitleWords appear in publications of any topic, creating token
// overlap between unrelated papers (the source of hard non-matches).
var generalTitleWords = []string{
	"efficient", "scalable", "adaptive", "robust", "parallel", "distributed",
	"incremental", "approximate", "optimal", "fast", "dynamic", "static",
	"novel", "unified", "general", "practical", "effective", "lightweight",
	"framework", "approach", "method", "system", "model", "analysis",
	"evaluation", "study", "survey", "techniques", "algorithms", "processing",
	"management", "optimization", "estimation", "detection", "discovery",
	"integration", "exploration", "generation", "construction", "selection",
	"learning", "mining", "search", "matching", "ranking", "clustering",
	"classification", "prediction", "inference", "reasoning", "sampling",
	"indexing", "caching", "partitioning", "scheduling", "recovery",
	"towards", "revisiting", "rethinking", "understanding", "improving",
	"accelerating", "supporting", "enabling", "exploiting", "leveraging",
}

// topicWords groups domain terms into topics; titles draw most words from a
// single topic so same-topic papers collide on tokens.
var topicWords = [][]string{
	{"entity", "resolution", "deduplication", "record", "linkage", "merge", "purge", "duplicate", "reference", "reconciliation", "canonicalization", "blocking"},
	{"crowdsourcing", "worker", "task", "label", "annotation", "quality", "budget", "incentive", "human", "hybrid", "verification", "assignment"},
	{"database", "query", "sql", "relational", "transaction", "concurrency", "isolation", "logging", "buffer", "storage", "tuple", "join"},
	{"stream", "window", "continuous", "event", "realtime", "latency", "throughput", "ingestion", "watermark", "outoforder", "sliding", "punctuation"},
	{"graph", "vertex", "edge", "traversal", "reachability", "shortest", "path", "subgraph", "isomorphism", "pagerank", "community", "motif"},
	{"machine", "neural", "network", "deep", "embedding", "feature", "gradient", "training", "regularization", "supervised", "transfer", "attention"},
	{"privacy", "differential", "anonymization", "security", "encryption", "access", "control", "audit", "disclosure", "perturbation", "noise", "sensitive"},
	{"spatial", "trajectory", "location", "nearest", "neighbor", "road", "geographic", "region", "moving", "objects", "proximity", "geofence"},
	{"text", "document", "corpus", "keyword", "retrieval", "relevance", "inverted", "semantic", "topic", "summarization", "extraction", "language"},
	{"web", "page", "crawler", "hyperlink", "html", "service", "api", "cache", "proxy", "session", "personalization", "recommendation"},
	{"sensor", "wireless", "energy", "battery", "aggregation", "routing", "coverage", "deployment", "iot", "telemetry", "calibration", "sink"},
	{"cloud", "virtualization", "container", "elastic", "provisioning", "multitenant", "migration", "serverless", "billing", "datacenter", "replication", "availability"},
	{"provenance", "lineage", "workflow", "versioning", "metadata", "curation", "annotationstore", "reproducibility", "derivation", "audittrail", "catalog", "schema"},
	{"uncertain", "probabilistic", "possible", "worlds", "confidence", "lineageprob", "expectation", "variance", "bayesian", "belief", "likelihood", "posterior"},
	{"compression", "encoding", "dictionary", "bitmap", "columnar", "vectorized", "simd", "layout", "footprint", "decompression", "succinct", "delta"},
	{"benchmark", "workload", "tpch", "synthetic", "generator", "profiling", "bottleneck", "regression", "microbenchmark", "calibration2", "reporting", "metrics"},
	{"temporal", "interval", "timeline", "bitemporal", "validtime", "history", "snapshot", "retention", "archive", "timetravel", "chronon", "versioned"},
	{"federated", "mediator", "wrapper", "heterogeneous", "sources", "fusion", "mapping", "translation", "ontology", "alignment", "mediation", "virtual"},
	{"etl", "pipeline", "cleaning", "wrangling", "transformation", "profiling2", "outlier", "imputation", "constraint", "dependency", "repair", "violation"},
	{"index", "btree", "hash", "lsm", "trie", "bloom", "filter", "adaptive2", "learned", "succinct2", "cachefriendly", "prefetch"},
}

// firstNames and lastNames build author lists; the limited pools create
// realistic author-name collisions across unrelated papers.
var firstNames = []string{
	"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
	"linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "wei", "li", "ming", "yan",
	"jun", "hui", "lei", "ahmed", "fatima", "omar", "priya", "raj",
	"anita", "carlos", "maria", "juan", "sofia", "hans", "greta", "pierre",
	"claire", "yuki", "hiroshi", "kenji", "olga", "ivan", "dmitri", "elena",
	"lars", "ingrid", "marco", "giulia", "pedro", "lucia", "chen", "zhang",
	"daniel", "laura", "kevin", "rachel", "brian", "amanda",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores", "green",
	"adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
	"carter", "roberts", "chen", "wang", "li", "zhang", "liu", "yang",
	"huang", "zhao", "wu", "zhou", "xu", "sun", "ma", "zhu", "hu", "guo",
	"kumar", "singh", "sharma", "patel", "gupta", "mehta", "reddy", "rao",
	"murthy", "iyer", "nakamura", "tanaka", "suzuki", "watanabe", "ito",
	"yamamoto", "kobayashi", "kato", "mueller", "schmidt", "schneider",
	"fischer", "weber", "meyer", "wagner", "becker", "schulz", "hoffmann",
	"rossi", "russo", "ferrari", "esposito", "bianchi", "romano", "colombo",
	"ricci", "marino", "greco", "ivanov", "petrov", "sidorov", "volkov",
	"kuznetsov", "popov", "sokolov", "lebedev", "kozlov", "novikov",
}

// venue holds the long form and the abbreviation Scholar-style records use.
type venue struct {
	full   string
	abbrev string
}

var venues = []venue{
	{"proceedings of the acm international conference on management of data", "sigmod"},
	{"proceedings of the vldb endowment", "pvldb"},
	{"ieee international conference on data engineering", "icde"},
	{"acm transactions on database systems", "tods"},
	{"ieee transactions on knowledge and data engineering", "tkde"},
	{"international conference on extending database technology", "edbt"},
	{"acm symposium on principles of database systems", "pods"},
	{"international conference on database theory", "icdt"},
	{"conference on information and knowledge management", "cikm"},
	{"acm sigkdd conference on knowledge discovery and data mining", "kdd"},
	{"international world wide web conference", "www"},
	{"international conference on machine learning", "icml"},
	{"neural information processing systems", "neurips"},
	{"aaai conference on artificial intelligence", "aaai"},
	{"international joint conference on artificial intelligence", "ijcai"},
	{"ieee international conference on data mining", "icdm"},
	{"siam international conference on data mining", "sdm"},
	{"european conference on machine learning", "ecml"},
	{"acm international conference on web search and data mining", "wsdm"},
	{"international semantic web conference", "iswc"},
	{"journal of machine learning research", "jmlr"},
	{"the vldb journal", "vldbj"},
	{"information systems", "infosys"},
	{"data and knowledge engineering", "dke"},
	{"knowledge and information systems", "kais"},
	{"distributed and parallel databases", "dapd"},
	{"acm computing surveys", "csur"},
	{"communications of the acm", "cacm"},
	{"ieee transactions on parallel and distributed systems", "tpds"},
	{"world wide web journal", "wwwj"},
}

// Product vocabularies for the Abt-Buy simulation.

var productBrands = []string{
	"sonova", "panatech", "kenmore", "vizonic", "altair", "brightex",
	"corelink", "duramax", "electra", "fusion", "gigaware", "halcyon",
	"inovix", "jetstream", "kinetix", "lumina", "maxtor", "nexus",
	"omnicore", "polaris", "quantix", "rivera", "solaris", "techno",
	"ultron", "vertex", "wavecrest", "xenon", "yamada", "zephyr",
}

// productCategories groups category nouns with the descriptive vocabulary
// their listings draw from; same-category products share description tokens.
var productCategories = []struct {
	nouns []string
	words []string
}{
	{
		[]string{"television", "tv", "display", "monitor"},
		[]string{"lcd", "led", "plasma", "screen", "inch", "widescreen", "hdmi", "1080p", "720p", "contrast", "ratio", "refresh", "rate", "wall", "mountable", "remote", "tuner", "hdtv", "panel", "backlight", "resolution", "viewing", "angle"},
	},
	{
		[]string{"camera", "camcorder", "webcam"},
		[]string{"digital", "megapixel", "zoom", "optical", "lens", "flash", "shutter", "aperture", "stabilization", "video", "recording", "memory", "card", "viewfinder", "autofocus", "burst", "iso", "sensor", "tripod", "battery", "rechargeable", "compact"},
	},
	{
		[]string{"speaker", "soundbar", "subwoofer", "headphones"},
		[]string{"audio", "stereo", "surround", "bass", "treble", "watt", "amplifier", "wireless", "bluetooth", "channel", "dolby", "acoustic", "driver", "frequency", "response", "noise", "cancelling", "earbud", "cushion", "volume", "dock", "aux"},
	},
	{
		[]string{"refrigerator", "freezer", "cooler"},
		[]string{"stainless", "steel", "cubic", "feet", "energy", "star", "compartment", "shelf", "crisper", "icemaker", "dispenser", "frost", "free", "door", "adjustable", "temperature", "capacity", "compressor", "quiet", "humidity", "drawer", "gallon"},
	},
	{
		[]string{"washer", "dryer", "dishwasher"},
		[]string{"cycle", "spin", "load", "front", "top", "steam", "sanitize", "rinse", "detergent", "drum", "capacity", "quiet", "vibration", "delay", "start", "energy", "efficient", "stackable", "rack", "tub", "wash", "dry"},
	},
	{
		[]string{"laptop", "notebook", "computer", "desktop"},
		[]string{"processor", "ram", "gigabyte", "terabyte", "hard", "drive", "ssd", "graphics", "keyboard", "touchpad", "battery", "wifi", "usb", "port", "webcam", "windows", "display", "core", "cache", "cooling", "slim", "aluminum"},
	},
	{
		[]string{"phone", "smartphone", "handset"},
		[]string{"touchscreen", "camera", "megapixel", "unlocked", "sim", "dual", "battery", "talk", "time", "bluetooth", "gps", "messaging", "apps", "storage", "gigabyte", "charger", "case", "screen", "protector", "network", "band", "speaker"},
	},
	{
		[]string{"microwave", "oven", "toaster", "blender"},
		[]string{"watt", "countertop", "convection", "defrost", "timer", "turntable", "stainless", "presets", "interior", "capacity", "crumb", "tray", "slice", "speed", "pulse", "pitcher", "blade", "dough", "bake", "broil", "grill", "power"},
	},
	{
		[]string{"vacuum", "cleaner", "purifier", "humidifier"},
		[]string{"filter", "hepa", "bagless", "cyclonic", "suction", "cordless", "attachment", "upright", "canister", "pet", "hair", "carpet", "hardwood", "tank", "mist", "output", "room", "coverage", "allergen", "dust", "brush", "swivel"},
	},
	{
		[]string{"gps", "navigator", "receiver", "radio"},
		[]string{"navigation", "maps", "traffic", "voice", "guidance", "satellite", "antenna", "mount", "touchscreen", "poi", "routing", "lane", "assist", "preloaded", "bluetooth", "handsfree", "fm", "transmitter", "tuner", "preset", "display", "portable"},
	},
}

var productAdjectives = []string{
	"black", "white", "silver", "gray", "red", "blue", "premium", "deluxe",
	"professional", "series", "edition", "new", "genuine", "original",
	"compact", "portable", "heavy", "duty", "high", "performance", "value",
	"pack", "kit", "bundle", "accessory", "replacement", "universal",
}
