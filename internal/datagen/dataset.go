package datagen

import (
	"fmt"

	"humo/internal/blocking"
	"humo/internal/core"
	"humo/internal/crowd"
	"humo/internal/records"
)

// ERDataset is a fully materialized two-table ER workload: the source
// tables, the scorer used to build it, the blocked candidate pairs and
// their ground-truth labels. LabeledPair IDs index into Candidates so
// feature vectors can be recovered for the SVM reference classifier.
type ERDataset struct {
	Name       string
	A, B       *records.Table
	Scorer     *blocking.Scorer
	Candidates []blocking.Pair
	Pairs      []LabeledPair
}

// Features returns the per-attribute similarity feature vector of pair id.
func (d *ERDataset) Features(id int) ([]float64, error) {
	if id < 0 || id >= len(d.Candidates) {
		return nil, fmt.Errorf("%w: pair id %d out of range [0,%d)", ErrBadConfig, id, len(d.Candidates))
	}
	c := d.Candidates[id]
	return d.Scorer.Features(c.A, c.B), nil
}

// Truth returns the oracle ground truth keyed by pair id.
func (d *ERDataset) Truth() map[int]bool {
	out := make(map[int]bool, len(d.Pairs))
	for _, p := range d.Pairs {
		out[p.ID] = p.Match
	}
	return out
}

// CorePairs converts the labeled pairs into the machine-visible form
// consumed by core.NewWorkload.
func (d *ERDataset) CorePairs() []core.Pair {
	out := make([]core.Pair, len(d.Pairs))
	for i, p := range d.Pairs {
		out[i] = core.Pair{ID: p.ID, Sim: p.Sim}
	}
	return out
}

// MatchCount returns the number of matching candidate pairs.
func (d *ERDataset) MatchCount() int { return MatchCount(d.Pairs) }

// CrowdRefs returns one crowd pair reference per candidate pair, exposing
// which two records each workload pair compares so the crowd pipeline can
// pack record-sharing pairs into one HIT and propagate answers by transitive
// closure. Record keys follow the repository convention for two-table
// workloads: A-side records at 2*recordID, B-side records at 2*recordID+1.
func (d *ERDataset) CrowdRefs() []crowd.PairRef {
	refs := make([]crowd.PairRef, len(d.Candidates))
	for i, c := range d.Candidates {
		refs[i] = crowd.PairRef{ID: i, A: 2 * c.A, B: 2*c.B + 1}
	}
	return refs
}

// labelCandidates converts scored candidates into labeled pairs using
// entity-id equality as ground truth.
func labelCandidates(a, b *records.Table, cands []blocking.Pair) []LabeledPair {
	out := make([]LabeledPair, len(cands))
	for i, c := range cands {
		out[i] = LabeledPair{
			ID:    i,
			Sim:   c.Sim,
			Match: a.Records[c.A].EntityID == b.Records[c.B].EntityID,
		}
	}
	return out
}
