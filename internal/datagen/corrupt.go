package datagen

import (
	"math/rand"
	"strings"
)

// corruptor applies controlled dirtiness to generated records, the mechanism
// that turns one clean entity into several non-identical records of the same
// entity. The aggressiveness of each operation determines where matching
// pairs land on the similarity axis, which is exactly the dataset
// characteristic the paper's two real workloads differ in (Fig. 4).
type corruptor struct {
	rng *rand.Rand
}

// dropWords removes each word independently with probability p, always
// keeping at least one word.
func (c *corruptor) dropWords(words []string, p float64) []string {
	out := words[:0:0]
	for _, w := range words {
		if c.rng.Float64() >= p {
			out = append(out, w)
		}
	}
	if len(out) == 0 && len(words) > 0 {
		out = append(out, words[c.rng.Intn(len(words))])
	}
	return out
}

// abbrevWords truncates each word to its first 1–4 runes with probability p,
// simulating the abbreviations that pervade scraped bibliographic data.
func (c *corruptor) abbrevWords(words []string, p float64) []string {
	out := make([]string, len(words))
	for i, w := range words {
		if len(w) > 4 && c.rng.Float64() < p {
			keep := 1 + c.rng.Intn(4)
			out[i] = w[:keep]
		} else {
			out[i] = w
		}
	}
	return out
}

// swapWords exchanges two random adjacent words with probability p.
func (c *corruptor) swapWords(words []string, p float64) []string {
	out := append([]string(nil), words...)
	if len(out) >= 2 && c.rng.Float64() < p {
		i := c.rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return out
}

// typos applies character-level noise: each letter is substituted with a
// random lowercase letter with probability p.
func (c *corruptor) typos(s string, p float64) string {
	if p <= 0 {
		return s
	}
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'a' && ch <= 'z' && c.rng.Float64() < p {
			b[i] = byte('a' + c.rng.Intn(26))
		}
	}
	return string(b)
}

// initialize reduces a first name to its initial ("maria" -> "m"), the most
// common divergence between bibliographic sources.
func initialize(first string) string {
	if first == "" {
		return first
	}
	return first[:1]
}

// replaceWords substitutes each word with a random word from the pool with
// probability p, simulating paraphrased product descriptions.
func (c *corruptor) replaceWords(words []string, pool []string, p float64) []string {
	out := make([]string, len(words))
	for i, w := range words {
		if len(pool) > 0 && c.rng.Float64() < p {
			out[i] = pool[c.rng.Intn(len(pool))]
		} else {
			out[i] = w
		}
	}
	return out
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// sampleDistinct draws k distinct elements (k <= len(xs)).
func sampleDistinct[T any](rng *rand.Rand, xs []T, k int) []T {
	idx := rng.Perm(len(xs))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

func joinWords(words []string) string { return strings.Join(words, " ") }
