package datagen

import (
	"errors"
	"math"
	"testing"
)

func TestLogisticProportion(t *testing.T) {
	// At v = 0.55 the curve is at half its 0.95 ceiling for any tau.
	for _, tau := range []float64{8, 14, 18} {
		if got := LogisticProportion(tau, 0.55); math.Abs(got-0.475) > 1e-12 {
			t.Errorf("LogisticProportion(%v, 0.55) = %v, want 0.475", tau, got)
		}
	}
	// Steeper tau is lower below the midpoint and higher above it.
	if !(LogisticProportion(18, 0.3) < LogisticProportion(8, 0.3)) {
		t.Error("steeper curve should be lower at v=0.3")
	}
	if !(LogisticProportion(18, 0.8) > LogisticProportion(8, 0.8)) {
		t.Error("steeper curve should be higher at v=0.8")
	}
	// Monotone in v.
	prev := -1.0
	for v := 0.0; v <= 1.0; v += 0.01 {
		p := LogisticProportion(14, v)
		if p < prev {
			t.Fatalf("logistic not monotone at v=%v", v)
		}
		prev = p
	}
}

func TestLogisticValidation(t *testing.T) {
	bad := []LogisticConfig{
		{N: 0, Tau: 14},
		{N: 100, Tau: 0},
		{N: 100, Tau: 14, Sigma: -1},
		{N: 100, Tau: 14, SubsetSize: -5},
	}
	for _, cfg := range bad {
		if _, err := Logistic(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestLogisticDeterminismAndSorting(t *testing.T) {
	cfg := LogisticConfig{N: 5000, Tau: 14, Sigma: 0.1, SubsetSize: 100, Seed: 99}
	a, err := Logistic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Logistic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.N {
		t.Fatalf("generated %d pairs, want %d", len(a), cfg.N)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Sim < a[i-1].Sim {
			t.Fatalf("pairs not sorted at %d", i)
		}
		if a[i].Sim < 0 || a[i].Sim > 1 {
			t.Fatalf("similarity %v out of [0,1]", a[i].Sim)
		}
	}
}

func TestLogisticMatchRateTracksCurve(t *testing.T) {
	// With sigma=0 the empirical match proportion of a similarity band must
	// track the logistic curve.
	pairs, err := Logistic(LogisticConfig{N: 200000, Tau: 14, Sigma: 0, SubsetSize: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bandMatches := make([]int, 10)
	bandTotal := make([]int, 10)
	for _, p := range pairs {
		b := int(p.Sim * 10)
		if b > 9 {
			b = 9
		}
		bandTotal[b]++
		if p.Match {
			bandMatches[b]++
		}
	}
	for b := 0; b < 10; b++ {
		center := (float64(b) + 0.5) / 10
		want := LogisticProportion(14, center)
		got := float64(bandMatches[b]) / float64(bandTotal[b])
		if math.Abs(got-want) > 0.05 {
			t.Errorf("band %d: empirical %.3f vs logistic %.3f", b, got, want)
		}
	}
}

func TestSplitAndTruthSlice(t *testing.T) {
	pairs := []LabeledPair{
		{ID: 0, Sim: 0.9, Match: true},
		{ID: 1, Sim: 0.1, Match: false},
		{ID: 2, Sim: 0.5, Match: true},
	}
	cp, truth := Split(pairs)
	if len(cp) != 3 || len(truth) != 3 {
		t.Fatal("Split sizes wrong")
	}
	if !truth[0] || truth[1] || !truth[2] {
		t.Error("truth map wrong")
	}
	ts := TruthSlice(pairs)
	// Sorted by sim: id1 (false), id2 (true), id0 (true).
	want := []bool{false, true, true}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("TruthSlice = %v, want %v", ts, want)
		}
	}
}

func TestMatchCountAndHistogram(t *testing.T) {
	pairs := []LabeledPair{
		{ID: 0, Sim: 0.15, Match: true},
		{ID: 1, Sim: 0.25, Match: true},
		{ID: 2, Sim: 0.35, Match: false},
		{ID: 3, Sim: 0.95, Match: true},
		{ID: 4, Sim: 1.0, Match: true}, // boundary lands in last bucket
	}
	if MatchCount(pairs) != 4 {
		t.Errorf("MatchCount = %d, want 4", MatchCount(pairs))
	}
	h, err := Histogram(pairs, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h[1] != 1 || h[2] != 1 || h[9] != 2 {
		t.Errorf("Histogram = %v", h)
	}
	if _, err := Histogram(pairs, 0, 1, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("zero buckets should fail")
	}
	if _, err := Histogram(pairs, 1, 0, 5); !errors.Is(err, ErrBadConfig) {
		t.Error("inverted range should fail")
	}
}

func TestLogisticSigmaCreatesIrregularity(t *testing.T) {
	// With large sigma, some low-similarity bands must have higher match
	// proportion than some higher bands (monotonicity broken).
	pairs, err := Logistic(LogisticConfig{N: 50000, Tau: 14, Sigma: 0.5, SubsetSize: 200, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Per-subset proportions in generation order (pairs are sorted).
	var props []float64
	for i := 0; i < len(pairs); i += 200 {
		end := i + 200
		if end > len(pairs) {
			end = len(pairs)
		}
		m := 0
		for _, p := range pairs[i:end] {
			if p.Match {
				m++
			}
		}
		props = append(props, float64(m)/float64(end-i))
	}
	inversions := 0
	for i := 1; i < len(props); i++ {
		if props[i] < props[i-1]-0.1 {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("sigma=0.5 should produce monotonicity violations")
	}
}
