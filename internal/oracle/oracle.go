// Package oracle simulates the human side of HUMO. The ground-truth labels
// of an ER workload are held out from the optimization algorithms and
// revealed one pair at a time, exactly as in the paper's protocol: "the
// ground-truth labels are originally hidden; whenever manual verification is
// called for, they are provided to the program" (§VIII-A).
//
// Every oracle memoizes, so asking about the same pair twice (e.g. a pair
// that is first sampled and later falls inside DH) costs one inspection —
// matching the paper's human-cost metric, the number of manually inspected
// instance pairs.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrUnknownPair reports a label request for a pair id outside the truth set.
var ErrUnknownPair = errors.New("oracle: unknown pair id")

// Simulated is a perfect human labeler over a fixed ground truth.
// It is safe for concurrent use.
type Simulated struct {
	mu      sync.Mutex
	truth   map[int]bool
	labeled map[int]bool // memoized answers (also the cost ledger)
}

// NewSimulated builds an oracle over ground truth: truth[id] reports whether
// pair id is a matching pair.
func NewSimulated(truth map[int]bool) *Simulated {
	copied := make(map[int]bool, len(truth))
	for id, v := range truth {
		copied[id] = v
	}
	return &Simulated{truth: copied, labeled: make(map[int]bool)}
}

// Label reveals the ground-truth label of the pair, recording it as one unit
// of human cost on first inspection. Unknown ids panic: they indicate a
// wiring bug between workload and oracle, not a user error.
func (o *Simulated) Label(id int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.labelLocked(id)
}

// LabelAll reveals the batch's labels in id order under one lock
// acquisition. It is bit-identical to calling Label per id.
func (o *Simulated) LabelAll(ids []int) []bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = o.labelLocked(id)
	}
	return out
}

func (o *Simulated) labelLocked(id int) bool {
	if v, ok := o.labeled[id]; ok {
		return v
	}
	v, ok := o.truth[id]
	if !ok {
		panic(fmt.Sprintf("%v: %d", ErrUnknownPair, id))
	}
	o.labeled[id] = v
	return v
}

// Cost returns the number of distinct pairs manually inspected so far —
// the paper's human-cost metric.
func (o *Simulated) Cost() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.labeled)
}

// Reset clears the inspection ledger (the ground truth is kept), so one
// truth set can serve several independent runs.
func (o *Simulated) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labeled = make(map[int]bool)
}

// Truth returns the ground-truth label without charging human cost. It is
// for evaluation code only (computing achieved precision/recall).
func (o *Simulated) Truth(id int) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.truth[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownPair, id)
	}
	return v, nil
}

// Noisy wraps a ground truth with symmetric label noise: each pair's human
// answer is flipped with the configured probability, decided once per pair
// and then memoized (a human does not flip-flop on the same pair). It
// supports the §IV discussion of human errors in DH and the corresponding
// ablation experiment.
type Noisy struct {
	mu        sync.Mutex
	truth     map[int]bool
	answers   map[int]bool
	errorRate float64
	rng       *rand.Rand
}

// NewNoisy builds a noisy oracle. errorRate must be in [0, 1); rng must be
// non-nil when errorRate > 0.
func NewNoisy(truth map[int]bool, errorRate float64, rng *rand.Rand) (*Noisy, error) {
	if errorRate < 0 || errorRate >= 1 {
		return nil, fmt.Errorf("oracle: error rate %v must be in [0,1)", errorRate)
	}
	if errorRate > 0 && rng == nil {
		return nil, errors.New("oracle: rng required for errorRate > 0")
	}
	copied := make(map[int]bool, len(truth))
	for id, v := range truth {
		copied[id] = v
	}
	return &Noisy{truth: copied, answers: make(map[int]bool), errorRate: errorRate, rng: rng}, nil
}

// Label returns the (possibly erroneous) human answer for the pair.
func (o *Noisy) Label(id int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.labelLocked(id)
}

// LabelAll answers the batch in id order under one lock acquisition. Fresh
// pairs consume the error stream in id order, so a batched run is
// bit-identical to a pair-by-pair run.
func (o *Noisy) LabelAll(ids []int) []bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = o.labelLocked(id)
	}
	return out
}

func (o *Noisy) labelLocked(id int) bool {
	if v, ok := o.answers[id]; ok {
		return v
	}
	v, ok := o.truth[id]
	if !ok {
		panic(fmt.Sprintf("%v: %d", ErrUnknownPair, id))
	}
	if o.errorRate > 0 && o.rng.Float64() < o.errorRate {
		v = !v
	}
	o.answers[id] = v
	return v
}

// Cost returns the number of distinct pairs inspected.
func (o *Noisy) Cost() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.answers)
}

// Truth returns the error-free ground truth for evaluation.
func (o *Noisy) Truth(id int) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.truth[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownPair, id)
	}
	return v, nil
}

// Crowd simulates majority voting over an odd number of noisy workers, the
// way HUMO's human workload would be processed on a crowdsourcing platform
// (§IX future work). Each worker answers independently with the per-worker
// error rate; cost counts worker answers, not pairs.
//
// Determinism contract: a base seed is drawn once from the constructor rng,
// and each pair's votes come from a private stream seeded by (base seed,
// pair id) alone. For the same construction, a pair therefore receives
// identical votes whether it is labeled one by one, in one batch, split
// across batches, or in any request order.
type Crowd struct {
	mu         sync.Mutex
	truth      map[int]bool
	answers    map[int]bool
	workers    int
	errorRate  float64
	baseSeed   int64
	totalVotes int
	batches    int
}

// NewCrowd builds a crowdsourced oracle with the given odd worker count per
// pair and per-worker error rate in [0, 0.5). The rng is consumed exactly
// once, for the base seed of the per-pair vote streams.
func NewCrowd(truth map[int]bool, workers int, errorRate float64, rng *rand.Rand) (*Crowd, error) {
	if workers < 1 || workers%2 == 0 {
		return nil, fmt.Errorf("oracle: workers %d must be odd and >= 1", workers)
	}
	if errorRate < 0 || errorRate >= 0.5 {
		return nil, fmt.Errorf("oracle: per-worker error rate %v must be in [0,0.5)", errorRate)
	}
	if errorRate > 0 && rng == nil {
		return nil, errors.New("oracle: rng required for errorRate > 0")
	}
	copied := make(map[int]bool, len(truth))
	for id, v := range truth {
		copied[id] = v
	}
	o := &Crowd{truth: copied, answers: make(map[int]bool), workers: workers, errorRate: errorRate}
	if rng != nil {
		o.baseSeed = rng.Int63()
	}
	return o, nil
}

// pairSeed disperses (baseSeed, id) into the seed of the pair's private vote
// stream (splitmix64-style finalizer).
func pairSeed(baseSeed int64, id int) int64 {
	z := uint64(baseSeed)*0x9e3779b97f4a7c15 ^ uint64(int64(id))*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Label returns the majority vote over the workers for the pair. A fresh
// pair counts as its own one-pair crowdsourcing batch; see LabelAll for
// batched submission.
func (o *Crowd) Label(id int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, known := o.answers[id]; !known {
		o.batches++
	}
	return o.labelLocked(id)
}

// LabelAll adjudicates the batch in id order. All fresh pairs of the call
// are submitted to the crowd as one batch (the HIT-group model of
// crowdsourced ER: workers vote on a page of pairs, not one pair at a time),
// so Batches counts one unit per call instead of one per pair, while Votes
// still counts every per-pair worker answer. A call with no fresh pair —
// empty, or entirely memoized — submits nothing and is free. Votes come from
// per-pair seeded streams, bit-identical to pair-by-pair submission in any
// order or split.
func (o *Crowd) LabelAll(ids []int) []bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	fresh := false
	for _, id := range ids {
		if _, known := o.answers[id]; !known {
			fresh = true
			break
		}
	}
	if fresh {
		o.batches++
	}
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = o.labelLocked(id)
	}
	return out
}

func (o *Crowd) labelLocked(id int) bool {
	if v, ok := o.answers[id]; ok {
		return v
	}
	v, ok := o.truth[id]
	if !ok {
		panic(fmt.Sprintf("%v: %d", ErrUnknownPair, id))
	}
	agree := o.workers
	if o.errorRate > 0 {
		agree = 0
		rng := rand.New(rand.NewSource(pairSeed(o.baseSeed, id)))
		for i := 0; i < o.workers; i++ {
			if rng.Float64() >= o.errorRate {
				agree++
			}
		}
	}
	o.totalVotes += o.workers
	ans := v
	if agree <= o.workers/2 {
		ans = !v // the majority got it wrong
	}
	o.answers[id] = ans
	return ans
}

// Cost returns the number of distinct pairs adjudicated.
func (o *Crowd) Cost() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.answers)
}

// Votes returns the total number of worker answers collected, the monetary
// cost proxy on a crowdsourcing platform.
func (o *Crowd) Votes() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.totalVotes
}

// Batches returns the number of crowdsourcing batches submitted so far: one
// per LabelAll call that adjudicated at least one fresh pair, one per fresh
// single-pair Label call. It proxies the per-HIT platform overhead that
// batching amortizes.
func (o *Crowd) Batches() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.batches
}

// Truth returns the error-free ground truth for evaluation.
func (o *Crowd) Truth(id int) (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.truth[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownPair, id)
	}
	return v, nil
}
