package oracle

import (
	"math/rand"
	"sync"
	"testing"
)

func sampleTruth(n int, seed int64) map[int]bool {
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		truth[i] = rng.Float64() < 0.5
	}
	return truth
}

func TestSimulatedLabelAndCost(t *testing.T) {
	truth := map[int]bool{1: true, 2: false, 3: true}
	o := NewSimulated(truth)
	if o.Cost() != 0 {
		t.Fatalf("initial cost = %d", o.Cost())
	}
	if !o.Label(1) || o.Label(2) {
		t.Error("labels disagree with truth")
	}
	if o.Cost() != 2 {
		t.Errorf("cost = %d, want 2", o.Cost())
	}
	// Repeat labeling is free.
	o.Label(1)
	if o.Cost() != 2 {
		t.Errorf("repeat label charged: cost = %d", o.Cost())
	}
	o.Reset()
	if o.Cost() != 0 {
		t.Error("reset should clear the ledger")
	}
	if !o.Label(3) {
		t.Error("label after reset wrong")
	}
}

func TestSimulatedTruthDoesNotCharge(t *testing.T) {
	o := NewSimulated(map[int]bool{1: true})
	v, err := o.Truth(1)
	if err != nil || !v {
		t.Fatalf("Truth(1) = %v, %v", v, err)
	}
	if o.Cost() != 0 {
		t.Error("Truth must not charge cost")
	}
	if _, err := o.Truth(99); err == nil {
		t.Error("unknown id should error")
	}
}

func TestSimulatedUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown pair should panic")
		}
	}()
	NewSimulated(map[int]bool{}).Label(42)
}

func TestSimulatedImmuneToCallerMutation(t *testing.T) {
	truth := map[int]bool{1: true}
	o := NewSimulated(truth)
	truth[1] = false // caller mutates their map
	if !o.Label(1) {
		t.Error("oracle must copy the truth map")
	}
}

func TestSimulatedConcurrent(t *testing.T) {
	truth := sampleTruth(1000, 1)
	o := NewSimulated(truth)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if o.Label(i) != truth[i] {
					t.Errorf("label mismatch at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if o.Cost() != 1000 {
		t.Errorf("cost = %d, want 1000", o.Cost())
	}
}

func TestNoisyValidation(t *testing.T) {
	if _, err := NewNoisy(nil, -0.1, nil); err == nil {
		t.Error("negative error rate should fail")
	}
	if _, err := NewNoisy(nil, 1.0, nil); err == nil {
		t.Error("error rate 1 should fail")
	}
	if _, err := NewNoisy(nil, 0.1, nil); err == nil {
		t.Error("missing rng should fail")
	}
	if _, err := NewNoisy(map[int]bool{}, 0, nil); err != nil {
		t.Errorf("zero error rate without rng should work: %v", err)
	}
}

func TestNoisyErrorRateApproximate(t *testing.T) {
	truth := sampleTruth(20000, 2)
	o, err := NewNoisy(truth, 0.1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := 0; i < 20000; i++ {
		if o.Label(i) != truth[i] {
			flipped++
		}
	}
	rate := float64(flipped) / 20000
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("observed flip rate %.3f, want ~0.10", rate)
	}
	// Memoized: same answers on re-ask.
	for i := 0; i < 100; i++ {
		first := o.Label(i)
		if o.Label(i) != first {
			t.Fatal("noisy oracle must memoize answers")
		}
	}
	if o.Cost() != 20000 {
		t.Errorf("cost = %d, want 20000", o.Cost())
	}
	if v, err := o.Truth(0); err != nil || v != truth[0] {
		t.Error("Truth must return the error-free label")
	}
}

func TestCrowdValidation(t *testing.T) {
	if _, err := NewCrowd(nil, 2, 0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("even worker count should fail")
	}
	if _, err := NewCrowd(nil, 0, 0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero workers should fail")
	}
	if _, err := NewCrowd(nil, 3, 0.6, rand.New(rand.NewSource(1))); err == nil {
		t.Error("error rate >= 0.5 should fail")
	}
	if _, err := NewCrowd(nil, 3, 0.1, nil); err == nil {
		t.Error("missing rng should fail")
	}
}

func TestCrowdMajorityBeatsSingleWorker(t *testing.T) {
	truth := sampleTruth(20000, 4)
	crowd, err := NewCrowd(truth, 5, 0.2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < 20000; i++ {
		if crowd.Label(i) != truth[i] {
			wrong++
		}
	}
	rate := float64(wrong) / 20000
	// 5 workers at 20% error: majority error = sum_{k>=3} C(5,k) .2^k .8^(5-k) ~ 5.8%.
	if rate > 0.09 {
		t.Errorf("crowd error rate %.3f, want well below single-worker 0.20", rate)
	}
	if crowd.Votes() != 5*20000 {
		t.Errorf("votes = %d, want %d", crowd.Votes(), 5*20000)
	}
	if crowd.Cost() != 20000 {
		t.Errorf("cost = %d, want 20000", crowd.Cost())
	}
	if v, err := crowd.Truth(0); err != nil || v != truth[0] {
		t.Error("Truth must return the error-free label")
	}
}

func TestCrowdPerfectWorkers(t *testing.T) {
	truth := sampleTruth(100, 6)
	crowd, err := NewCrowd(truth, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if crowd.Label(i) != truth[i] {
			t.Fatal("perfect crowd must match truth")
		}
	}
}
