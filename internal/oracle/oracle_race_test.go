package oracle

import (
	"math/rand"
	"testing"

	"humo/internal/parallel"
)

// The oracles are the one piece of state every parallel repetition shares a
// type with (each repetition gets its own instance, but nothing stops a
// caller from sharing one). These tests hammer each oracle from the worker
// pool so `go test -race` proves the mutex guards hold, and assert the
// memoized answers and cost accounting stay exact under contention.

func raceTruth(n int) map[int]bool {
	truth := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		truth[i] = i%3 == 0
	}
	return truth
}

func TestSimulatedConcurrentLabel(t *testing.T) {
	const n = 500
	o := NewSimulated(raceTruth(n))
	// Every pair is labeled by four goroutines; memoization must keep the
	// cost at n distinct pairs.
	err := parallel.ForEach(8, 4*n, func(i int) error {
		id := i % n
		if got, want := o.Label(id), id%3 == 0; got != want {
			t.Errorf("Label(%d) = %v, want %v", id, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Cost() != n {
		t.Errorf("Cost = %d, want %d", o.Cost(), n)
	}
}

func TestNoisyConcurrentLabel(t *testing.T) {
	const n = 300
	o, err := NewNoisy(raceTruth(n), 0.2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// First pass records the memoized answers, concurrent second pass must
	// reproduce them exactly (a human does not flip-flop).
	first := make([]bool, n)
	for i := 0; i < n; i++ {
		first[i] = o.Label(i)
	}
	err = parallel.ForEach(8, 4*n, func(i int) error {
		id := i % n
		if got := o.Label(id); got != first[id] {
			t.Errorf("Label(%d) flip-flopped: %v then %v", id, first[id], got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Cost() != n {
		t.Errorf("Cost = %d, want %d", o.Cost(), n)
	}
}

func TestCrowdConcurrentLabel(t *testing.T) {
	const n = 200
	o, err := NewCrowd(raceTruth(n), 3, 0.1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	err = parallel.ForEach(8, 4*n, func(i int) error {
		o.Label(i % n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Cost() != n {
		t.Errorf("Cost = %d, want %d", o.Cost(), n)
	}
	if o.Votes() != 3*n {
		t.Errorf("Votes = %d, want %d (3 workers per distinct pair)", o.Votes(), 3*n)
	}
}
