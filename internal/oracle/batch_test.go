package oracle

import (
	"math/rand"
	"testing"
)

// TestNoisyBatchSequentialParity checks the determinism contract of
// LabelAll: a batched run consumes the error stream exactly like a
// pair-by-pair run, so memoized answers agree bit for bit.
func TestNoisyBatchSequentialParity(t *testing.T) {
	truth := map[int]bool{}
	ids := make([]int, 0, 500)
	for i := 0; i < 500; i++ {
		truth[i] = i%3 == 0
		ids = append(ids, i)
	}
	seq, err := NewNoisy(truth, 0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewNoisy(truth, 0.2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	got := bat.LabelAll(ids)
	for i, id := range ids {
		if want := seq.Label(id); got[i] != want {
			t.Fatalf("pair %d: batch answer %v, sequential answer %v", id, got[i], want)
		}
	}
	if seq.Cost() != bat.Cost() {
		t.Fatalf("cost diverged: sequential %d, batch %d", seq.Cost(), bat.Cost())
	}
}

// TestCrowdBatchAccounting checks the per-batch crowd model: votes are
// per-pair, batches are per-submission, and re-asking adjudicated pairs
// costs neither.
func TestCrowdBatchAccounting(t *testing.T) {
	truth := map[int]bool{1: true, 2: false, 3: true, 4: false, 5: true}
	o, err := NewCrowd(truth, 3, 0.1, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	o.LabelAll([]int{1, 2, 3})
	if got := o.Batches(); got != 1 {
		t.Fatalf("one submission, Batches() = %d", got)
	}
	if got := o.Votes(); got != 9 {
		t.Fatalf("3 pairs x 3 workers, Votes() = %d", got)
	}
	// A batch of already-adjudicated pairs is answered from memory: no new
	// batch, no new votes.
	o.LabelAll([]int{1, 3})
	if got := o.Batches(); got != 1 {
		t.Fatalf("memoized resubmission counted: Batches() = %d", got)
	}
	// A mixed batch with one fresh pair is one more submission.
	o.LabelAll([]int{2, 4})
	if got, wantV := o.Batches(), o.Votes(); got != 2 || wantV != 12 {
		t.Fatalf("mixed batch: Batches() = %d (want 2), Votes() = %d (want 12)", got, wantV)
	}
	// A fresh single-pair Label is its own batch.
	o.Label(5)
	if got := o.Batches(); got != 3 {
		t.Fatalf("fresh Label: Batches() = %d (want 3)", got)
	}
	if got := o.Cost(); got != 5 {
		t.Fatalf("Cost() = %d, want 5 distinct pairs", got)
	}
}

// TestSimulatedBatchParity checks LabelAll answers and costs match Label.
func TestSimulatedBatchParity(t *testing.T) {
	truth := map[int]bool{1: true, 2: false, 3: true}
	o := NewSimulated(truth)
	got := o.LabelAll([]int{1, 2, 3, 1})
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	if o.Cost() != 3 {
		t.Fatalf("Cost() = %d, want 3 (duplicates are free)", o.Cost())
	}
}
