package oracle

import (
	"math/rand"
	"testing"
)

func crowdTruth(n int) (map[int]bool, []int) {
	truth := make(map[int]bool, n)
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		truth[i] = i%3 == 0
		ids = append(ids, i)
	}
	return truth, ids
}

func newTestCrowd(t *testing.T, truth map[int]bool) *Crowd {
	t.Helper()
	o, err := NewCrowd(truth, 3, 0.3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestCrowdVoteDeterminism pins the Crowd determinism contract: for the same
// seed, a pair's adjudicated answer is identical whether pairs are labeled
// one by one, as one batch, split across batches, or in reverse order.
func TestCrowdVoteDeterminism(t *testing.T) {
	truth, ids := crowdTruth(200)

	oneByOne := newTestCrowd(t, truth)
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = oneByOne.Label(id)
	}

	batched := newTestCrowd(t, truth)
	for i, got := range batched.LabelAll(ids) {
		if got != want[ids[i]] {
			t.Fatalf("pair %d: batched answer %v, one-by-one %v", ids[i], got, want[ids[i]])
		}
	}

	split := newTestCrowd(t, truth)
	for start := 0; start < len(ids); start += 37 {
		chunk := ids[start:min(start+37, len(ids))]
		for i, got := range split.LabelAll(chunk) {
			if got != want[chunk[i]] {
				t.Fatalf("pair %d: split answer %v, one-by-one %v", chunk[i], got, want[chunk[i]])
			}
		}
	}

	reversed := newTestCrowd(t, truth)
	for i := len(ids) - 1; i >= 0; i-- {
		if got := reversed.Label(ids[i]); got != want[ids[i]] {
			t.Fatalf("pair %d: reverse-order answer %v, forward %v", ids[i], got, want[ids[i]])
		}
	}
}

// TestCrowdEmptyAndMemoizedBatchesFree pins the Batches accounting: only a
// call adjudicating at least one fresh pair submits a crowdsourcing batch.
func TestCrowdEmptyAndMemoizedBatchesFree(t *testing.T) {
	truth, _ := crowdTruth(10)
	o := newTestCrowd(t, truth)

	o.LabelAll(nil)
	o.LabelAll([]int{})
	if got := o.Batches(); got != 0 {
		t.Fatalf("empty batches cost %d, want 0", got)
	}
	if got := o.Votes(); got != 0 {
		t.Fatalf("empty batches cast %d votes, want 0", got)
	}

	o.LabelAll([]int{0, 1, 2})
	if got := o.Batches(); got != 1 {
		t.Fatalf("after one fresh batch Batches = %d, want 1", got)
	}
	o.LabelAll([]int{0, 1, 2}) // fully memoized: free
	o.LabelAll(nil)
	if got := o.Batches(); got != 1 {
		t.Fatalf("memoized/empty batches charged: Batches = %d, want 1", got)
	}
	if got := o.Votes(); got != 9 {
		t.Fatalf("Votes = %d, want 9 (3 fresh pairs x 3 workers)", got)
	}

	o.LabelAll([]int{1, 2, 3}) // one fresh pair: one more batch, 3 more votes
	if got := o.Batches(); got != 2 {
		t.Fatalf("Batches = %d, want 2", got)
	}
	if got := o.Votes(); got != 12 {
		t.Fatalf("Votes = %d, want 12", got)
	}
	if got := o.Cost(); got != 4 {
		t.Fatalf("Cost = %d, want 4 distinct pairs", got)
	}
}
