package records

import (
	"errors"
	"testing"
)

func validTable() *Table {
	return &Table{
		Name:       "t",
		Attributes: []string{"name", "desc"},
		Records: []Record{
			{ID: 0, EntityID: 10, Values: []string{"a", "x"}},
			{ID: 1, EntityID: 11, Values: []string{"b", "y"}},
			{ID: 2, EntityID: 10, Values: []string{"c", "z"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTable().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	empty := &Table{Name: "e"}
	if err := empty.Validate(); !errors.Is(err, ErrBadTable) {
		t.Error("empty schema should fail")
	}
	bad := validTable()
	bad.Records[1].Values = []string{"only-one"}
	if err := bad.Validate(); !errors.Is(err, ErrBadTable) {
		t.Error("arity mismatch should fail")
	}
	dup := validTable()
	dup.Records[2].ID = 0
	if err := dup.Validate(); !errors.Is(err, ErrBadTable) {
		t.Error("duplicate id should fail")
	}
}

func TestAttributeIndex(t *testing.T) {
	tab := validTable()
	i, err := tab.AttributeIndex("desc")
	if err != nil || i != 1 {
		t.Fatalf("AttributeIndex(desc) = %d, %v", i, err)
	}
	if _, err := tab.AttributeIndex("missing"); !errors.Is(err, ErrBadTable) {
		t.Error("missing attribute should fail")
	}
}

func TestColumn(t *testing.T) {
	tab := validTable()
	col := tab.Column(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(0) = %v, want %v", col, want)
		}
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3", tab.Len())
	}
}

func TestColumnPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range column should panic")
		}
	}()
	validTable().Column(5)
}
