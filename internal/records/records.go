// Package records models the relational records the simulated real datasets
// are built from (paper §VIII-A: bibliographic records for DBLP-Scholar,
// product records for Abt-Buy). A Record carries a hidden EntityID — the
// real-world entity it denotes — which generators set and the oracle uses
// for ground truth; resolution algorithms never read it.
package records

import (
	"errors"
	"fmt"
)

// ErrBadTable reports a structurally invalid table.
var ErrBadTable = errors.New("records: invalid table")

// Record is one relational record.
type Record struct {
	// ID is unique within its table.
	ID int
	// EntityID identifies the underlying real-world entity (ground truth).
	EntityID int
	// Values holds one string per table attribute.
	Values []string
}

// Table is a named collection of records over a fixed attribute schema.
//
// A Table built once is immutable by convention; the streaming path grows
// it through Append, which validates each batch and records a versioned
// snapshot boundary so downstream consumers (incremental blocking, session
// extension) can reason about "the table as of version v" as the prefix
// Records[:SnapshotLen(v)].
type Table struct {
	Name       string
	Attributes []string
	Records    []Record

	// verLens[v] is len(Records) as of version v. Nil until the first
	// Append; a nil chain means version 0 covers all records.
	verLens []int
	// idSeen indexes Records by id for Append's duplicate check. Built
	// lazily on first Append from the records present at that point.
	idSeen map[int]struct{}
}

// Validate checks structural invariants: non-empty schema, per-record value
// arity, and unique record ids.
func (t *Table) Validate() error {
	if len(t.Attributes) == 0 {
		return fmt.Errorf("%w: table %q has no attributes", ErrBadTable, t.Name)
	}
	seen := make(map[int]struct{}, len(t.Records))
	for i, r := range t.Records {
		if len(r.Values) != len(t.Attributes) {
			return fmt.Errorf("%w: table %q record %d has %d values, want %d", ErrBadTable, t.Name, i, len(r.Values), len(t.Attributes))
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("%w: table %q has duplicate record id %d", ErrBadTable, t.Name, r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// AttributeIndex returns the position of the named attribute, or an error.
func (t *Table) AttributeIndex(name string) (int, error) {
	for i, a := range t.Attributes {
		if a == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: table %q has no attribute %q", ErrBadTable, t.Name, name)
}

// Column returns the values of attribute i across all records, in record
// order. It is the input to similarity.DistinctValueWeights.
func (t *Table) Column(i int) []string {
	if i < 0 || i >= len(t.Attributes) {
		panic(fmt.Sprintf("records: column %d out of range for table %q", i, t.Name))
	}
	out := make([]string, len(t.Records))
	for j, r := range t.Records {
		out[j] = r.Values[i]
	}
	return out
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Append adds recs to the table as one atomic batch and returns the new
// version number. Version 0 is the table as constructed; each successful
// Append bumps the version by one, even for an empty batch. Every record is
// validated against the schema and the table's id set before anything is
// appended, so a failed Append leaves the table untouched.
//
// Append is not safe for concurrent use with itself or with readers.
func (t *Table) Append(recs ...Record) (version int, err error) {
	if len(t.Attributes) == 0 {
		return 0, fmt.Errorf("%w: table %q has no attributes", ErrBadTable, t.Name)
	}
	if t.idSeen == nil {
		t.idSeen = make(map[int]struct{}, len(t.Records)+len(recs))
		for _, r := range t.Records {
			t.idSeen[r.ID] = struct{}{}
		}
	}
	// Validate the whole batch (against the table and within itself)
	// before mutating anything, so a failed Append leaves no trace.
	batch := make(map[int]struct{}, len(recs))
	for i, r := range recs {
		if len(r.Values) != len(t.Attributes) {
			return 0, fmt.Errorf("%w: table %q appended record %d has %d values, want %d", ErrBadTable, t.Name, i, len(r.Values), len(t.Attributes))
		}
		if _, dup := t.idSeen[r.ID]; dup {
			return 0, fmt.Errorf("%w: table %q append would duplicate record id %d", ErrBadTable, t.Name, r.ID)
		}
		if _, dup := batch[r.ID]; dup {
			return 0, fmt.Errorf("%w: table %q append batch duplicates record id %d", ErrBadTable, t.Name, r.ID)
		}
		batch[r.ID] = struct{}{}
	}
	for id := range batch {
		t.idSeen[id] = struct{}{}
	}
	if t.verLens == nil {
		t.verLens = []int{len(t.Records)}
	}
	t.Records = append(t.Records, recs...)
	t.verLens = append(t.verLens, len(t.Records))
	return len(t.verLens) - 1, nil
}

// Version returns the table's current version: 0 as constructed, bumped by
// one per Append.
func (t *Table) Version() int {
	if t.verLens == nil {
		return 0
	}
	return len(t.verLens) - 1
}

// SnapshotLen returns len(Records) as of version v, so Records[:SnapshotLen(v)]
// is the table's state when that version was current. It panics on a version
// the table never had.
func (t *Table) SnapshotLen(v int) int {
	if v == 0 && t.verLens == nil {
		return len(t.Records)
	}
	if v < 0 || v >= len(t.verLens) {
		panic(fmt.Sprintf("records: table %q has no version %d", t.Name, v))
	}
	return t.verLens[v]
}
