// Package records models the relational records the simulated real datasets
// are built from (paper §VIII-A: bibliographic records for DBLP-Scholar,
// product records for Abt-Buy). A Record carries a hidden EntityID — the
// real-world entity it denotes — which generators set and the oracle uses
// for ground truth; resolution algorithms never read it.
package records

import (
	"errors"
	"fmt"
)

// ErrBadTable reports a structurally invalid table.
var ErrBadTable = errors.New("records: invalid table")

// Record is one relational record.
type Record struct {
	// ID is unique within its table.
	ID int
	// EntityID identifies the underlying real-world entity (ground truth).
	EntityID int
	// Values holds one string per table attribute.
	Values []string
}

// Table is a named collection of records over a fixed attribute schema.
type Table struct {
	Name       string
	Attributes []string
	Records    []Record
}

// Validate checks structural invariants: non-empty schema, per-record value
// arity, and unique record ids.
func (t *Table) Validate() error {
	if len(t.Attributes) == 0 {
		return fmt.Errorf("%w: table %q has no attributes", ErrBadTable, t.Name)
	}
	seen := make(map[int]struct{}, len(t.Records))
	for i, r := range t.Records {
		if len(r.Values) != len(t.Attributes) {
			return fmt.Errorf("%w: table %q record %d has %d values, want %d", ErrBadTable, t.Name, i, len(r.Values), len(t.Attributes))
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("%w: table %q has duplicate record id %d", ErrBadTable, t.Name, r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// AttributeIndex returns the position of the named attribute, or an error.
func (t *Table) AttributeIndex(name string) (int, error) {
	for i, a := range t.Attributes {
		if a == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: table %q has no attribute %q", ErrBadTable, t.Name, name)
}

// Column returns the values of attribute i across all records, in record
// order. It is the input to similarity.DistinctValueWeights.
func (t *Table) Column(i int) []string {
	if i < 0 || i >= len(t.Attributes) {
		panic(fmt.Sprintf("records: column %d out of range for table %q", i, t.Name))
	}
	out := make([]string, len(t.Records))
	for j, r := range t.Records {
		out[j] = r.Values[i]
	}
	return out
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }
