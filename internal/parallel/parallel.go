// Package parallel provides the bounded worker pool underneath every
// concurrent code path of the repository: experiment repetitions
// (internal/experiments), whole experiments (cmd/humoexp) and the coherent
// Gaussian-process variance precompute (internal/core).
//
// The pool is deliberately deterministic: work is claimed in index order,
// results are collected by index, and the error reported on failure is the
// one of the lowest failing index — so callers observe the same outcome with
// one worker as with many, and parallel runs can be asserted bit-identical
// to sequential ones.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged. All
// concurrency knobs in this repository share this convention.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n) using at most `workers`
// goroutines (workers <= 0 selects GOMAXPROCS). Callers collect results by
// writing to index i of a pre-sized slice inside fn; distinct indices never
// alias, so no further synchronization is needed.
//
// Indices are claimed in increasing order. Once any call fails, unclaimed
// indices are skipped, in-flight calls run to completion, and the error of
// the lowest failing index is returned — the same error a sequential loop
// would have stopped at, regardless of worker count.
//
// With workers == 1 (or n <= 1) fn runs inline on the calling goroutine,
// making the 1-worker configuration literally sequential.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		// minFailed holds the lowest failing index recorded so far (n =
		// none). An index is skipped only when it is strictly above a
		// recorded failure — i.e. an index a sequential run would never
		// have reached. Skipping on a bare "some failure happened" flag
		// would be racy: a goroutine that claimed a low index before a
		// higher one failed could drop it, losing the lower error.
		minFailed atomic.Int64

		mu       sync.Mutex
		firstErr error
	)
	minFailed.Store(int64(n))
	record := func(i int, err error) {
		mu.Lock()
		if int64(i) < minFailed.Load() {
			minFailed.Store(int64(i))
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || int64(i) > minFailed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every skipped index sits strictly above some recorded failure, and
	// claims are sequential — so every index below the final minimum
	// failing index was executed, and firstErr is exactly the error a
	// sequential loop would have stopped at.
	return firstErr
}

// Map runs fn for every index in [0, n) across at most `workers` goroutines
// and returns the results keyed by index. On error the results are dropped
// and the lowest-indexed error is returned (see ForEach).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
