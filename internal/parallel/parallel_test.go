package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 16, 100} {
		const n = 237
		seen := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexedError(t *testing.T) {
	// Indices 3 and 7 fail; every worker count must report index 3's error,
	// exactly like the sequential loop.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 20, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 10000 {
		t.Error("pool claimed every index despite an early failure")
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 32} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	want := errors.New("nope")
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 2 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}

// TestForEachRace hammers a shared accumulator from many goroutines so
// `go test -race` exercises the pool's synchronization.
func TestForEachRace(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(8, 5000, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}
