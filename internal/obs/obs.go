// Package obs is the observability layer of the serving stack: lock-free
// counters and latency histograms collected in a Registry and exported as
// expvar-style JSON at GET /metrics, plus a structured JSON logger with
// adaptive steady-state sampling so production traffic does not drown the
// interesting events.
//
// Everything in the package is safe for concurrent use and allocation-free
// on the hot paths (Counter.Add, Histogram.Observe): servers instrument
// per-request without contending on a lock or generating garbage.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically growing (or freely moving, when used as a
// gauge) atomic int64.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of exponential latency buckets. Bucket i holds
// observations in (2^(i-1), 2^i] microseconds; the last bucket is a
// catch-all. 40 buckets cover 1µs to ~6 days, far past any request.
const histBuckets = 40

// Histogram is a fixed-bucket exponential latency histogram with atomic
// buckets: Observe is lock-free and allocation-free, quantiles are
// approximate (upper bucket bound) but monotone and cheap to compute.
type Histogram struct {
	count   atomic.Int64
	sumUs   atomic.Int64
	maxUs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor returns the bucket index of a duration.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(float64(us))))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			break
		}
	}
	h.buckets[bucketFor(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound on the p-quantile (p in [0,1]) of the
// observed latencies: the upper edge of the bucket the quantile falls in.
// It returns 0 with no observations.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			upper := time.Duration(1<<uint(i)) * time.Microsecond
			if max := time.Duration(h.maxUs.Load()) * time.Microsecond; upper > max {
				return max
			}
			return upper
		}
	}
	return time.Duration(h.maxUs.Load()) * time.Microsecond
}

// HistogramSnapshot is the JSON shape of one histogram in the metrics
// export. Quantiles are upper bucket bounds in microseconds.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	MeanU float64 `json:"mean_us"`
	P50U  int64   `json:"p50_us"`
	P95U  int64   `json:"p95_us"`
	P99U  int64   `json:"p99_us"`
	MaxU  int64   `json:"max_us"`
}

// Snapshot returns the histogram's summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		P50U:  h.Quantile(0.50).Microseconds(),
		P95U:  h.Quantile(0.95).Microseconds(),
		P99U:  h.Quantile(0.99).Microseconds(),
		MaxU:  h.maxUs.Load(),
	}
	if s.Count > 0 {
		s.MeanU = float64(h.sumUs.Load()) / float64(s.Count)
	}
	return s
}

// Registry names counters and histograms and serializes them for the
// /metrics endpoint. Lookup (Counter/Histogram) interns the instrument on
// first use; the instruments themselves are lock-free, the registry lock is
// only taken to intern or snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// NamedCounter is one counter's snapshot entry.
type NamedCounter struct {
	Name  string
	Value int64
}

// NamedHistogram is one histogram's snapshot entry.
type NamedHistogram struct {
	Name string
	Hist HistogramSnapshot
}

// Snapshot returns every instrument's current value, sorted by name. The
// order is part of the contract: /metrics serializes the slices as
// returned, so two snapshots of the same instruments at the same values
// render byte-identically.
func (r *Registry) Snapshot() (counters []NamedCounter, histograms []NamedHistogram) {
	r.mu.Lock()
	counters = make([]NamedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, NamedCounter{Name: name, Value: c.Value()})
	}
	histograms = make([]NamedHistogram, 0, len(r.histograms))
	for name, h := range r.histograms {
		histograms = append(histograms, NamedHistogram{Name: name, Hist: h.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(histograms, func(i, j int) bool { return histograms[i].Name < histograms[j].Name })
	return counters, histograms
}
