package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 5+16*1000 {
		t.Fatalf("Value = %d after concurrent Incs, want %d", got, 5+16*1000)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	// 100 samples 1ms..100ms. Buckets are powers of two in µs, so the p50
	// (true value 50ms) reports the upper edge of its (32.768ms, 65.536ms]
	// bucket; the p99 bucket edge (131ms) is clamped to the observed 100ms
	// max.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 50*time.Millisecond || p50 > 65536*time.Microsecond {
		t.Fatalf("p50 = %v, want within [50ms, 65.536ms]", p50)
	}
	if got := h.Quantile(0.99); got != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want the 100ms max (bucket bound clamped)", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want max", got)
	}
	// Quantiles are monotone in p.
	prev := time.Duration(0)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", p, q, prev)
		}
		prev = q
	}

	s := h.Snapshot()
	if s.Count != 100 || s.MaxU != 100_000 || s.P99U != 100_000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.MeanU < 50_000 || s.MeanU > 51_000 { // true mean 50.5ms
		t.Fatalf("mean %v, want ~50500", s.MeanU)
	}
}

// TestHistogramQuantileBounds pins the edges of the Quantile contract: p=0
// and p=1 on a single observation both report that observation (the bucket
// upper bound clamps to the observed max), and out-of-range p clamps into
// [0,1] instead of panicking or extrapolating.
func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Quantile(p); got != 5*time.Millisecond {
			t.Fatalf("Quantile(%v) with one sample = %v, want 5ms", p, got)
		}
	}
	if got := h.Quantile(-0.5); got != 5*time.Millisecond {
		t.Fatalf("Quantile(-0.5) = %v, want clamp to p=0", got)
	}
	if got := h.Quantile(2); got != 5*time.Millisecond {
		t.Fatalf("Quantile(2) = %v, want clamp to p=1", got)
	}
	// p=0 still means "smallest observation's bucket", not zero: with two
	// samples in different buckets it reports the lower one.
	var h2 Histogram
	h2.Observe(1 * time.Millisecond)
	h2.Observe(60 * time.Millisecond)
	if p0 := h2.Quantile(0); p0 > 2*time.Millisecond {
		t.Fatalf("Quantile(0) = %v, want the low bucket (<= ~1ms bound)", p0)
	}
	if p1 := h2.Quantile(1); p1 != 60*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want the 60ms max", p1)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Duration(i*j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != 8*500 {
		t.Fatalf("Count = %d, want %d", got, 8*500)
	}
	if got := h.Snapshot().MaxU; got != int64(7*499) {
		t.Fatalf("MaxU = %d, want %d", got, 7*499)
	}
}

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not interned")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram not interned")
	}
	r.Counter("a").Add(3)
	r.Histogram("h").Observe(2 * time.Millisecond)
	counters, hists := r.Snapshot()
	if len(counters) != 1 || counters[0].Name != "a" || counters[0].Value != 3 {
		t.Fatalf("counters %v", counters)
	}
	if len(hists) != 1 || hists[0].Name != "h" || hists[0].Hist.Count != 1 {
		t.Fatalf("histograms %v", hists)
	}
}

// TestRegistrySnapshotOrdered: Snapshot returns instruments sorted by name
// regardless of interning order — the order /metrics serializes.
func TestRegistrySnapshotOrdered(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		r.Counter(name).Inc()
		r.Histogram(name + ".lat").Observe(time.Millisecond)
	}
	counters, hists := r.Snapshot()
	for i := 1; i < len(counters); i++ {
		if counters[i-1].Name >= counters[i].Name {
			t.Fatalf("counters out of order at %d: %v", i, counters)
		}
	}
	for i := 1; i < len(hists); i++ {
		if hists[i-1].Name >= hists[i].Name {
			t.Fatalf("histograms out of order at %d: %v", i, hists)
		}
	}
	if len(counters) != 4 || counters[0].Name != "alpha" || counters[3].Name != "zeta" {
		t.Fatalf("counters %v", counters)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(7)
	r.Histogram("lat").Observe(3 * time.Millisecond)
	rec := httptest.NewRecorder()
	r.Handler(time.Now().Add(-2*time.Second)).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body struct {
		UptimeSeconds float64                      `json:"uptime_seconds"`
		Counters      map[string]int64             `json:"counters"`
		Latencies     map[string]HistogramSnapshot `json:"latencies"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	if body.UptimeSeconds < 2 {
		t.Fatalf("uptime %v, want >= 2s", body.UptimeSeconds)
	}
	if body.Counters["reqs"] != 7 || body.Latencies["lat"].Count != 1 {
		t.Fatalf("body %+v", body)
	}
}

// TestMetricsHandlerByteStable pins the /metrics byte layout: with the same
// instrument values, two renders differ only in the uptime_seconds line, and
// instruments appear in sorted name order in the raw bytes.
func TestMetricsHandlerByteStable(t *testing.T) {
	r := NewRegistry()
	// Intern in shuffled order; the body must still render sorted.
	for _, name := range []string{"writes", "reads", "errors"} {
		r.Counter(name).Add(int64(len(name)))
	}
	for _, name := range []string{"store", "apply"} {
		r.Histogram(name).Observe(4 * time.Millisecond)
	}
	h := r.Handler(time.Now())

	render := func() []string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		var kept []string
		sc := bufio.NewScanner(rec.Body)
		for sc.Scan() {
			if bytes.Contains(sc.Bytes(), []byte("uptime_seconds")) {
				continue
			}
			kept = append(kept, sc.Text())
		}
		return kept
	}

	first, second := render(), render()
	if len(first) == 0 {
		t.Fatal("empty body")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("body not byte-stable:\n%v\n%v", first, second)
	}
	joined := fmt.Sprint(first)
	for _, ordered := range [][2]string{{`"errors"`, `"reads"`}, {`"reads"`, `"writes"`}, {`"apply"`, `"store"`}} {
		a, b := indexOf(joined, ordered[0]), indexOf(joined, ordered[1])
		if a < 0 || b < 0 || a > b {
			t.Fatalf("%s does not precede %s in body:\n%s", ordered[0], ordered[1], joined)
		}
	}
}

func indexOf(s, sub string) int {
	return bytes.Index([]byte(s), []byte(sub))
}

// readLines decodes every JSON log line in the buffer.
func readLines(t *testing.T, buf *bytes.Buffer) []line {
	t.Helper()
	var out []line
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("decoding line %q: %v", sc.Text(), err)
		}
		out = append(out, l)
	}
	return out
}

// TestLoggerSampling pins the adaptive sampler: every Interval-th
// steady-state event is kept with the skipped count, an Interesting event
// replays the ContextBefore window and opens a full-resolution ContextAfter
// window.
func TestLoggerSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, Config{Enabled: true, Interval: 5, ContextBefore: 2, ContextAfter: 2, SteadyState: true})

	// 10 steady events with Interval 5: lines 5 and 10 survive, each
	// reporting 4 skipped.
	for i := 1; i <= 10; i++ {
		l.Event("tick", map[string]any{"i": i})
	}
	lines := readLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("%d lines after 10 sampled events, want 2: %+v", len(lines), lines)
	}
	for _, ln := range lines {
		if ln.Event != "tick" || ln.Skipped != 4 {
			t.Fatalf("sampled line %+v, want 4 skipped", ln)
		}
	}

	// Three more dropped events, then an Interesting one: the last 2 dropped
	// replay as "before" context, then the event itself, and its skipped
	// count excludes the replayed lines (3 dropped - 2 replayed = 1).
	buf.Reset()
	for i := 11; i <= 13; i++ {
		l.Event("tick", map[string]any{"i": i})
	}
	l.Interesting("boom", nil)
	lines = readLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("%d lines around Interesting, want 3: %+v", len(lines), lines)
	}
	if lines[0].Ctx != "before" || lines[1].Ctx != "before" {
		t.Fatalf("context lines %+v", lines[:2])
	}
	if f0, f1 := lines[0].Fields["i"], lines[1].Fields["i"]; f0 != 12.0 || f1 != 13.0 {
		t.Fatalf("replayed events %v,%v, want the last two dropped (12,13)", f0, f1)
	}
	if lines[2].Event != "boom" || lines[2].Ctx != "" || lines[2].Skipped != 1 {
		t.Fatalf("interesting line %+v, want 1 skipped", lines[2])
	}

	// The after-window: the next 2 events log at full resolution, the third
	// is sampled away again.
	buf.Reset()
	for i := 14; i <= 16; i++ {
		l.Event("tick", map[string]any{"i": i})
	}
	lines = readLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("%d lines in the after-window, want 2: %+v", len(lines), lines)
	}

	// Sequence numbers are strictly increasing across everything above.
	l.Interesting("end", nil)
	var last uint64
	for _, ln := range readLines(t, &buf) {
		if ln.Seq <= last {
			t.Fatalf("seq %d not increasing (prev %d)", ln.Seq, last)
		}
		last = ln.Seq
	}
}

// TestLoggerDisabledSampling: Enabled=false logs every event.
func TestLoggerDisabledSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, Config{Enabled: false})
	for i := 0; i < 7; i++ {
		l.Event("tick", nil)
	}
	if lines := readLines(t, &buf); len(lines) != 7 {
		t.Fatalf("%d lines with sampling disabled, want 7", len(lines))
	}
}

// TestLoggerNilSafe: a nil logger and a nil writer both drop silently.
func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Event("tick", nil)
	l.Interesting("boom", nil)
	l2 := NewLogger(nil, DefaultConfig())
	l2.Event("tick", nil)
	l2.Interesting("boom", nil)
}

// TestLoggerConcurrent hammers the logger from many goroutines: all output
// lines must stay valid JSON with unique sequence numbers.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&safeWriter{w: &buf}, DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if j%10 == 0 {
					l.Interesting(fmt.Sprintf("boom-%d", i), nil)
				} else {
					l.Event("tick", nil)
				}
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, ln := range readLines(t, &buf) {
		if seen[ln.Seq] {
			t.Fatalf("duplicate seq %d", ln.Seq)
		}
		seen[ln.Seq] = true
	}
}

// safeWriter serializes writes (the logger holds its own lock, but the test
// buffer needs one for the race detector when shared with readLines).
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
