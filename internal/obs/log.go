package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Config controls adaptive sampling of steady-state log events. The shape
// (Interval plus a context window around interesting moments) follows the
// getstats-sampling pattern: steady-state traffic is thinned to every Nth
// event, but the events just before and after an interesting one are kept
// at full resolution so an operator sees the lead-up, not only the spike.
type Config struct {
	Enabled       bool // enable adaptive sampling (false logs every event)
	Interval      int  // keep every Nth steady-state event (default 10)
	ContextBefore int  // suppressed events replayed before an interesting one (default 2)
	ContextAfter  int  // full-resolution events after an interesting one (default 2)
	SteadyState   bool // annotate sampled entries with the suppressed count (default true)
}

// DefaultConfig returns the recommended sampling defaults.
func DefaultConfig() Config {
	return Config{
		Enabled:       true,
		Interval:      10,
		ContextBefore: 2,
		ContextAfter:  2,
		SteadyState:   true,
	}
}

// Logger writes structured JSON log lines (one object per line) with
// adaptive steady-state sampling. Event logs a steady-state occurrence that
// the sampler may drop; Interesting always logs, first replaying up to
// ContextBefore of the most recently dropped events (tagged "ctx":"before")
// and then disabling sampling for the next ContextAfter events.
type Logger struct {
	cfg Config

	mu        sync.Mutex
	w         io.Writer
	seq       uint64
	sinceKeep int     // steady-state events since the last kept one
	skipped   int64   // dropped events since the last emitted line
	afterLeft int     // full-resolution events still owed after an interesting one
	ring      []entry // last ContextBefore dropped events
}

type entry struct {
	ts     time.Time
	event  string
	fields map[string]any
}

// NewLogger returns a Logger writing to w. A nil w yields a logger that
// drops everything (all methods stay safe to call).
func NewLogger(w io.Writer, cfg Config) *Logger {
	if cfg.Interval <= 0 {
		cfg.Interval = 10
	}
	if cfg.ContextBefore < 0 {
		cfg.ContextBefore = 0
	}
	if cfg.ContextAfter < 0 {
		cfg.ContextAfter = 0
	}
	return &Logger{cfg: cfg, w: w}
}

// line is the wire shape of one log line.
type line struct {
	TS      string         `json:"ts"`
	Seq     uint64         `json:"seq"`
	Event   string         `json:"event"`
	Ctx     string         `json:"ctx,omitempty"`     // "before" for replayed context
	Skipped int64          `json:"skipped,omitempty"` // dropped since last line (SteadyState)
	Fields  map[string]any `json:"fields,omitempty"`
}

// emitLocked writes one line; l.mu must be held.
func (l *Logger) emitLocked(ts time.Time, event, ctx string, fields map[string]any) {
	l.seq++
	out := line{
		TS:     ts.UTC().Format(time.RFC3339Nano),
		Seq:    l.seq,
		Event:  event,
		Ctx:    ctx,
		Fields: fields,
	}
	if ctx == "" {
		if l.cfg.SteadyState {
			out.Skipped = l.skipped
		}
		l.skipped = 0
	} else if l.skipped > 0 {
		l.skipped-- // a replayed context line is no longer a dropped one
	}
	data, err := json.Marshal(out)
	if err != nil {
		return
	}
	l.w.Write(append(data, '\n')) //nolint:errcheck // logging is best-effort
}

// Event logs one steady-state occurrence, subject to sampling.
func (l *Logger) Event(event string, fields map[string]any) {
	if l == nil || l.w == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cfg.Enabled {
		l.emitLocked(now, event, "", fields)
		return
	}
	if l.afterLeft > 0 {
		l.afterLeft--
		l.emitLocked(now, event, "", fields)
		return
	}
	l.sinceKeep++
	if l.sinceKeep >= l.cfg.Interval {
		l.sinceKeep = 0
		l.emitLocked(now, event, "", fields)
		return
	}
	// Dropped: remember it for the before-context window.
	l.skipped++
	if l.cfg.ContextBefore > 0 {
		if len(l.ring) == l.cfg.ContextBefore {
			copy(l.ring, l.ring[1:])
			l.ring = l.ring[:len(l.ring)-1]
		}
		l.ring = append(l.ring, entry{ts: now, event: event, fields: fields})
	}
}

// Interesting logs an event unconditionally: the last ContextBefore dropped
// events are replayed first (tagged "ctx":"before"), the event itself is
// written, and the next ContextAfter steady-state events bypass sampling.
func (l *Logger) Interesting(event string, fields map[string]any) {
	if l == nil || l.w == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.ring {
		l.emitLocked(e.ts, e.event, "before", e.fields)
	}
	l.ring = l.ring[:0]
	l.emitLocked(now, event, "", fields)
	if l.cfg.Enabled {
		l.afterLeft = l.cfg.ContextAfter
	}
}
