package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// metricsBody is the JSON body of GET /metrics: expvar-style, one flat
// object per instrument kind plus process uptime.
type metricsBody struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Latencies     map[string]HistogramSnapshot `json:"latencies"`
}

// Handler returns the GET /metrics handler: the registry snapshot as
// indented JSON. start anchors the exported uptime.
func (r *Registry) Handler(start time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		counters, hists := r.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metricsBody{ //nolint:errcheck // best-effort write to a live conn
			UptimeSeconds: time.Since(start).Seconds(),
			Counters:      counters,
			Latencies:     hists,
		})
	})
}
