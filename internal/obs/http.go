package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"time"
)

// counterObject serializes a sorted counter snapshot as one flat JSON
// object, emitting keys in slice order. encoding/json would sort map keys
// too, but marshaling the slices directly keeps the byte layout pinned to
// Snapshot's contract rather than to a map-iteration workaround.
type counterObject []NamedCounter

func (cs counterObject) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, c := range cs {
		if i > 0 {
			buf.WriteByte(',')
		}
		name, err := json.Marshal(c.Name)
		if err != nil {
			return nil, err
		}
		buf.Write(name)
		buf.WriteByte(':')
		value, err := json.Marshal(c.Value)
		if err != nil {
			return nil, err
		}
		buf.Write(value)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// histogramObject serializes a sorted histogram snapshot the same way.
type histogramObject []NamedHistogram

func (hs histogramObject) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, h := range hs {
		if i > 0 {
			buf.WriteByte(',')
		}
		name, err := json.Marshal(h.Name)
		if err != nil {
			return nil, err
		}
		buf.Write(name)
		buf.WriteByte(':')
		hist, err := json.Marshal(h.Hist)
		if err != nil {
			return nil, err
		}
		buf.Write(hist)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// metricsBody is the JSON body of GET /metrics: expvar-style, one flat
// object per instrument kind plus process uptime. Instruments render in
// Snapshot's sorted order, so the body is byte-stable across requests for
// the same instrument values (only uptime_seconds moves).
type metricsBody struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Counters      counterObject   `json:"counters"`
	Latencies     histogramObject `json:"latencies"`
}

// Handler returns the GET /metrics handler: the registry snapshot as
// indented JSON. start anchors the exported uptime.
func (r *Registry) Handler(start time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		counters, hists := r.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metricsBody{ //nolint:errcheck // best-effort write to a live conn
			UptimeSeconds: time.Since(start).Seconds(),
			Counters:      counters,
			Latencies:     hists,
		})
	})
}
