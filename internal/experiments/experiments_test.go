package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"humo/internal/core"
)

// tinyEnv returns a minimal environment for fast structural tests.
func tinyEnv() *Env {
	e := NewEnv(ScaleSmall, 2, 11)
	return e
}

func TestIDsRegistered(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"ablation-window", "ablation-subset", "ablation-allsamp", "ablation-eps",
		"ablation-human-error", "riskcost", "crowdcost", "correctcost",
	}
	ids := IDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	// IDs are sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted at %d: %q >= %q", i, ids[i-1], ids[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(tinyEnv(), "nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown id error = %v", err)
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a    bb", "333  4", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Analytic(t *testing.T) {
	tables, err := Run(tinyEnv(), "fig5")
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 20 {
		t.Fatalf("fig5 has %d rows", len(tbl.Rows))
	}
	// At v = 0.55 all curves are at 0.475.
	for _, row := range tbl.Rows {
		if row[0] != "0.55" {
			continue
		}
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0.474 || v > 0.476 {
				t.Errorf("fig5 midpoint cell %q, want ~0.475", cell)
			}
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	tables, err := Run(tinyEnv(), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig4 returned %d tables, want 2 (DS, AB)", len(tables))
	}
	counts := func(tbl *Table) []int {
		out := make([]int, len(tbl.Rows))
		for i, row := range tbl.Rows {
			n, err := strconv.Atoi(row[1])
			if err != nil {
				t.Fatalf("bad count %q", row[1])
			}
			out[i] = n
		}
		return out
	}
	ds := counts(tables[0])
	ab := counts(tables[1])
	sumRange := func(xs []int, lo, hi int) int {
		s := 0
		for i := lo; i < hi && i < len(xs); i++ {
			s += xs[i]
		}
		return s
	}
	// DS: matches concentrate in the upper half of the similarity axis.
	if hi, lo := sumRange(ds, 10, 20), sumRange(ds, 0, 10); hi <= lo {
		t.Errorf("DS distribution not high-concentrated: low=%d high=%d", lo, hi)
	}
	// AB: a substantial share of matches below similarity 0.5.
	if lo := sumRange(ab, 0, 10); lo == 0 {
		t.Error("AB has no matches below similarity 0.5")
	}
}

func TestTable1ShapeDSBeatsAB(t *testing.T) {
	tables, err := Run(tinyEnv(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("table1 rows = %d", len(tbl.Rows))
	}
	f1 := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad f1 %q", row[3])
		}
		return v
	}
	dsF1, abF1 := f1(tbl.Rows[0]), f1(tbl.Rows[1])
	if dsF1 <= abF1 {
		t.Errorf("Table I shape broken: DS f1 %.3f should exceed AB f1 %.3f", dsF1, abF1)
	}
}

func TestTable2BaseMeetsRequirements(t *testing.T) {
	tables, err := Run(tinyEnv(), "table2")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		level, err := strconv.ParseFloat(strings.TrimPrefix(row[0], "a=b="), 64)
		if err != nil {
			t.Fatalf("bad requirement cell %q", row[0])
		}
		for col := 1; col <= 4; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("bad cell %q", row[col])
			}
			if v < level {
				t.Errorf("BASE missed requirement %.2f: %s = %v (row %v)", level, tables[0].Header[col], v, row)
			}
		}
	}
}

func TestFig6Structure(t *testing.T) {
	tables, err := Run(tinyEnv(), "fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig6 tables = %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != len(qualityGrid) {
			t.Errorf("%s rows = %d, want %d", tbl.Title, len(tbl.Rows), len(qualityGrid))
		}
		for _, row := range tbl.Rows {
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil || v <= 0 || v > 100 {
					t.Errorf("cost cell %q out of (0,100]", cell)
				}
			}
		}
	}
}

func TestCorrectCostStructure(t *testing.T) {
	tables, err := Run(tinyEnv(), "correctcost")
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("correctcost rows = %d, want one per requirement level", len(tbl.Rows))
	}
	if len(tbl.Header) != 11 {
		t.Fatalf("correctcost header = %v", tbl.Header)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %v width != header", row)
		}
		// Cost columns are percentages of the workload.
		for _, col := range []int{1, 2, 3, 6, 7, 8} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 || v > 100 {
				t.Errorf("cost cell %s=%q out of (0,100]", tbl.Header[col], row[col])
			}
		}
	}
	// On DS the reference SVM is decent (Table I): the corrected regime must
	// beat the hybrid search's human cost at the 0.90 requirement.
	row := tbl.Rows[2]
	saved, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if saved <= 0 {
		t.Errorf("DS saved %% = %v at a=b=0.90, want positive (row %v)", saved, row)
	}
}

func TestRunMethodUnknown(t *testing.T) {
	e := tinyEnv()
	b, err := e.dsBundle()
	if err != nil {
		t.Fatal(err)
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	if _, err := runMethod(b, "NOPE", req, 1, 1); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestAvgRunsBaseDeterministicSingleRun(t *testing.T) {
	e := tinyEnv()
	b, err := e.dsBundle()
	if err != nil {
		t.Fatal(err)
	}
	req := core.Requirement{Alpha: 0.8, Beta: 0.8, Theta: 0.9}
	avg, err := e.avgRuns(b, methodBase, req, 50)
	if err != nil {
		t.Fatal(err)
	}
	if avg.costPct <= 0 || avg.costPct > 100 {
		t.Errorf("BASE cost %% = %v", avg.costPct)
	}
	if avg.successPct != 0 && avg.successPct != 100 {
		t.Errorf("deterministic BASE success %% = %v, want 0 or 100", avg.successPct)
	}
}
