package experiments

import (
	"fmt"

	"humo/internal/core"
)

func init() {
	registry["fig6"] = Fig6
	registry["table2"] = Table2
	registry["table3"] = Table3
	registry["table4"] = Table4
	registry["fig7"] = Fig7
	registry["fig8"] = Fig8
}

// qualityGrid is the (alpha, beta) requirement grid of Fig. 6 and
// Tables II–IV.
var qualityGrid = []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95}

// Fig6 reproduces the human-cost comparison of the three optimization
// approaches across the quality-requirement grid (paper Fig. 6), with
// theta = 0.9. SAMP and HYBR are averaged over Env.Runs repetitions.
func Fig6(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	out := make([]*Table, 0, 2)
	for _, b := range bundles {
		t := &Table{
			ID:     "fig6",
			Title:  fmt.Sprintf("percentage of manual work, %s dataset (theta=0.9, %d runs)", b.name, e.Runs),
			Header: []string{"(precision,recall)", "BASE %", "SAMP %", "HYBR %"},
		}
		for _, level := range qualityGrid {
			req := core.Requirement{Alpha: level, Beta: level, Theta: 0.9}
			row := []string{fmt.Sprintf("(.%02.0f,.%02.0f)", level*100, level*100)}
			for _, method := range []string{methodBase, methodSamp, methodHybr} {
				avg, err := e.avgRuns(b, method, req, e.Runs)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(avg.costPct))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// qualityTable runs one method over the requirement grid on both datasets
// and reports the achieved quality (and success rate for the stochastic
// methods) — the Tables II/III/IV protocol.
func (e *Env) qualityTable(id, method string, withSuccess bool) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	header := []string{"requirement", "DS precision", "DS recall", "AB precision", "AB recall"}
	if withSuccess {
		header = append(header, "DS success %", "AB success %")
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("quality levels achieved by %s (theta=0.9, %d runs)", method, e.Runs),
		Header: header,
	}
	for _, level := range qualityGrid {
		req := core.Requirement{Alpha: level, Beta: level, Theta: 0.9}
		row := []string{fmt.Sprintf("a=b=%.2f", level)}
		var successes []float64
		for _, b := range bundles {
			avg, err := e.avgRuns(b, method, req, e.Runs)
			if err != nil {
				return nil, err
			}
			row = append(row, frac4(avg.precision), frac4(avg.recall))
			successes = append(successes, avg.successPct)
		}
		if withSuccess {
			for _, s := range successes {
				row = append(row, fmt.Sprintf("%.0f", s))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table2 reproduces the quality levels achieved by BASE (paper Table II).
func Table2(e *Env) ([]*Table, error) {
	return e.qualityTable("table2", methodBase, false)
}

// Table3 reproduces the quality levels and success rates achieved by SAMP
// (paper Table III).
func Table3(e *Env) ([]*Table, error) {
	return e.qualityTable("table3", methodSamp, true)
}

// Table4 reproduces the quality levels and success rates achieved by HYBR
// (paper Table IV).
func Table4(e *Env) ([]*Table, error) {
	return e.qualityTable("table4", methodHybr, true)
}

// confidenceSweep varies the confidence level with alpha = beta = 0.9, the
// Figs. 7–8 protocol, on one dataset.
func (e *Env) confidenceSweep(id string, b *workloadBundle) ([]*Table, error) {
	thetas := []float64{0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("varying confidence level on %s (alpha=beta=0.9, %d runs)", b.name, e.Runs),
		Header: []string{"theta", "SAMP cost %", "HYBR cost %", "SAMP success %", "HYBR success %"},
	}
	for _, theta := range thetas {
		req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: theta}
		samp, err := e.avgRuns(b, methodSamp, req, e.Runs)
		if err != nil {
			return nil, err
		}
		hybr, err := e.avgRuns(b, methodHybr, req, e.Runs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", theta),
			pct(samp.costPct), pct(hybr.costPct),
			fmt.Sprintf("%.0f", samp.successPct), fmt.Sprintf("%.0f", hybr.successPct),
		})
	}
	return []*Table{t}, nil
}

// Fig7 reproduces the confidence-level sweep on DS (paper Fig. 7).
func Fig7(e *Env) ([]*Table, error) {
	b, err := e.dsBundle()
	if err != nil {
		return nil, err
	}
	return e.confidenceSweep("fig7", b)
}

// Fig8 reproduces the confidence-level sweep on AB (paper Fig. 8).
func Fig8(e *Env) ([]*Table, error) {
	b, err := e.abBundle()
	if err != nil {
		return nil, err
	}
	return e.confidenceSweep("fig8", b)
}

func (e *Env) bothBundles() ([]*workloadBundle, error) {
	ds, err := e.dsBundle()
	if err != nil {
		return nil, err
	}
	ab, err := e.abBundle()
	if err != nil {
		return nil, err
	}
	return []*workloadBundle{ds, ab}, nil
}
