package experiments

import (
	"fmt"
	"time"

	"humo/internal/core"
)

func init() {
	registry["table7"] = Table7
	registry["fig12"] = Fig12
}

// Table7 reproduces the machine-runtime comparison on the two simulated
// real datasets (paper Table VII). Runtime covers only the optimization
// search, excluding data generation and human-verification latency, as in
// the paper.
func Table7(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "table7",
		Title:  "machine runtime of the optimization searches",
		Header: []string{"dataset", "# pairs", "BASE", "SAMP", "HYBR"},
	}
	for _, b := range bundles {
		row := []string{b.name, fmt.Sprintf("%d", b.w.Len())}
		for _, m := range []string{methodBase, methodSamp, methodHybr} {
			avg, err := e.avgRuns(b, m, req, minInt(e.Runs, 5))
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDuration(avg.elapsedMean))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig12 reproduces the scalability experiment: runtime of the three
// approaches on synthetic workloads of growing size (paper Fig. 12).
func Fig12(e *Env) ([]*Table, error) {
	sizes := []int{10000, 50000, 100000, 200000, 400000, 800000}
	if e.Scale == ScaleSmall {
		sizes = []int{10000, 20000, 40000, 80000}
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "fig12",
		Title:  "runtime scalability on synthetic workloads (tau=14, sigma=0.1)",
		Header: []string{"# pairs", "BASE", "SAMP", "HYBR"},
	}
	for _, n := range sizes {
		b, err := e.syntheticBundle(14, 0.1, n, e.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range []string{methodBase, methodSamp, methodHybr} {
			res, err := runMethod(b, m, req, e.Seed, e.Workers)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDuration(res.elapsed))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func fmtDuration(d time.Duration) string {
	return d.Round(time.Microsecond * 100).String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
