package experiments

import (
	"math/rand"

	"humo/internal/core"
	"humo/internal/datagen"
	"humo/internal/fellegi"
	"humo/internal/metrics"
	"humo/internal/svm"
)

func init() {
	registry["ablation-budget"] = AblationBudget
	registry["ablation-metric"] = AblationMetric
}

// AblationBudget traces the pay-as-you-go quality curve (§II's progressive-
// ER contrast class): expected-quality-maximizing HUMO divisions under
// increasing human budgets, on both simulated real datasets.
func AblationBudget(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-budget",
		Title:  "pay-as-you-go: quality under a fixed human budget (BudgetedSearch)",
		Header: []string{"dataset", "budget %", "spent %", "precision", "recall", "f1"},
	}
	for _, b := range bundles {
		for _, frac := range []float64{0.02, 0.05, 0.10, 0.20} {
			budget := int(frac * float64(b.w.Len()))
			o := b.oracle()
			sol, err := core.BudgetedSearch(b.w, budget, o, core.SamplingConfig{
				Rand: rand.New(rand.NewSource(e.Seed)),
			})
			if err != nil {
				return nil, err
			}
			labels := sol.Resolve(b.w, o)
			q, err := metrics.Evaluate(labels, b.truth)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				b.name,
				pct(100 * frac),
				pct(100 * float64(o.Cost()) / float64(b.w.Len())),
				frac4(q.Precision), frac4(q.Recall), frac4(q.F1),
			})
		}
	}
	return []*Table{t}, nil
}

// AblationMetric exercises §IV-A's claim that HUMO works with machine
// metrics other than pair similarity: the hybrid search runs on the DS
// workload scored by (a) aggregated similarity, (b) linear-SVM decision
// values and (c) Fellegi-Sunter match probability, under the same
// requirement.
func AblationMetric(e *Env) ([]*Table, error) {
	ds, err := e.DS()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-metric",
		Title:  "machine metrics on DS (HYBR, alpha=beta=theta=0.9)",
		Header: []string{"metric", "cost %", "precision", "recall"},
		Notes: []string{
			"SVM decision values come from a classifier trained on a labeled sample " +
				"(not charged as HUMO cost); the Fellegi-Sunter weight is fitted " +
				"unsupervised by EM.",
			"The FS metric illustrates the paper's monotonicity caveat: an " +
				"unsupervised coarse-binned fit orders some pair groups wrongly, and " +
				"HUMO inherits the violation (higher cost, missed precision).",
		},
	}

	// Feature vectors per pair, shared by the learned metrics.
	feats := make([][]float64, len(ds.Pairs))
	for i, p := range ds.Pairs {
		f, err := ds.Features(p.ID)
		if err != nil {
			return nil, err
		}
		feats[i] = f
	}

	metricsToRun := []struct {
		name  string
		score func() ([]float64, error)
	}{
		{"similarity", func() ([]float64, error) {
			out := make([]float64, len(ds.Pairs))
			for i, p := range ds.Pairs {
				out[i] = p.Sim
			}
			return out, nil
		}},
		{"svm-decision", func() ([]float64, error) {
			trainSize := minInt(len(ds.Pairs)/10, 2000)
			trainIdx, _, err := svm.TrainTestSplit(len(ds.Pairs), trainSize, e.Seed)
			if err != nil {
				return nil, err
			}
			var tf [][]float64
			var tl []bool
			for _, i := range trainIdx {
				tf = append(tf, feats[i])
				tl = append(tl, ds.Pairs[i].Match)
			}
			model, err := svm.Train(tf, tl, svm.Config{Seed: e.Seed})
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(ds.Pairs))
			for i := range ds.Pairs {
				out[i] = model.Decision(feats[i])
			}
			// Min-max normalize onto [0,1]: the GP hyperparameter grid and
			// the subset machinery assume a unit-scale metric axis.
			lo, hi := out[0], out[0]
			for _, v := range out {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi > lo {
				for i := range out {
					out[i] = (out[i] - lo) / (hi - lo)
				}
			}
			return out, nil
		}},
		{"fs-weight", func() ([]float64, error) {
			// The match *weight* (log odds) spreads pairs along the metric
			// axis far better than the posterior probability, which
			// saturates at 0/1 and collapses the subset structure.
			model, err := fellegi.Fit(feats, fellegi.Config{Levels: 6})
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(ds.Pairs))
			for i := range ds.Pairs {
				v, err := model.Weight(feats[i])
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			lo, hi := out[0], out[0]
			for _, v := range out {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi > lo {
				for i := range out {
					out[i] = (out[i] - lo) / (hi - lo)
				}
			}
			return out, nil
		}},
	}

	for _, mt := range metricsToRun {
		scores, err := mt.score()
		if err != nil {
			return nil, err
		}
		pairs := make([]datagen.LabeledPair, len(ds.Pairs))
		for i, p := range ds.Pairs {
			pairs[i] = datagen.LabeledPair{ID: p.ID, Sim: scores[i], Match: p.Match}
		}
		b, err := newBundle("DS/"+mt.name, pairs, e.subsetSize())
		if err != nil {
			return nil, err
		}
		avg, err := e.avgRuns(b, methodHybr, req, minInt(e.Runs, 10))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mt.name, pct(avg.costPct), frac4(avg.precision), frac4(avg.recall),
		})
	}
	return []*Table{t}, nil
}
