package experiments

import (
	"fmt"

	"humo/internal/core"
)

func init() {
	registry["riskcost"] = RiskCost
}

// RiskCost compares the end-to-end human cost of the paper's best performer
// (HYBR) against the risk-aware schedule (RISK, the r-HUMO refinement of
// Hou et al. 2018) on both simulated datasets, across the quality grid.
// Both consume the same partial-sampling fit; RISK then labels the human
// zone rarest-risk-first with online re-estimation instead of handing the
// whole certified zone to the human, so the "saved" columns measure what
// the risk schedule buys on top of the hybrid search under an identical
// requirement.
func RiskCost(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "riskcost",
		Title: fmt.Sprintf("human cost, HUMO hybrid vs r-HUMO risk schedule (theta=0.9, %d runs)", e.Runs),
		Header: []string{
			"requirement",
			"DS HYBR %", "DS RISK %", "DS saved %", "DS success %",
			"AB HYBR %", "AB RISK %", "AB saved %", "AB success %",
		},
		Notes: []string{
			"saved = (HYBR - RISK) / HYBR of the average end-to-end human cost " +
				"(sampling + schedule + final DH); success is RISK's rate of " +
				"meeting the requirement.",
		},
	}
	for _, level := range []float64{0.80, 0.85, 0.90, 0.95} {
		req := core.Requirement{Alpha: level, Beta: level, Theta: 0.9}
		row := []string{fmt.Sprintf("a=b=%.2f", level)}
		for _, b := range bundles {
			hybr, err := e.avgRuns(b, methodHybr, req, e.Runs)
			if err != nil {
				return nil, err
			}
			risk, err := e.avgRuns(b, methodRisk, req, e.Runs)
			if err != nil {
				return nil, err
			}
			saved := 0.0
			if hybr.costPct > 0 {
				saved = 100 * (hybr.costPct - risk.costPct) / hybr.costPct
			}
			row = append(row,
				pct(hybr.costPct), pct(risk.costPct), pct(saved),
				fmt.Sprintf("%.0f", risk.successPct))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
