package experiments

import (
	"fmt"
	"math/rand"

	"humo/internal/core"
	"humo/internal/datagen"
	"humo/internal/metrics"
	"humo/internal/oracle"
)

func init() {
	registry["ablation-window"] = AblationBaseWindow
	registry["ablation-subset"] = AblationSubsetSize
	registry["ablation-allsamp"] = AblationAllVsPartial
	registry["ablation-eps"] = AblationGPEpsilon
	registry["ablation-human-error"] = AblationHumanError
}

// AblationBaseWindow studies the baseline window width w (the number of
// consecutive subsets averaged for boundary estimates; DESIGN.md design
// choice, paper recommends 3–10): small windows react to noise, large ones
// are more conservative and cost more.
func AblationBaseWindow(e *Env) ([]*Table, error) {
	b, err := e.dsBundle()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-window",
		Title:  "BASE window width on DS (alpha=beta=0.9)",
		Header: []string{"window", "cost %", "precision", "recall"},
	}
	for _, window := range []int{1, 3, 5, 10} {
		o := b.oracle()
		sol, err := core.BaseSearch(b.w, req, o, core.BaseConfig{Window: window, StartSubset: -1})
		if err != nil {
			return nil, err
		}
		labels := sol.Resolve(b.w, o)
		q, err := metrics.Evaluate(labels, b.truth)
		if err != nil {
			return nil, err
		}
		costPct := 100 * float64(o.Cost()) / float64(b.w.Len())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", window), pct(costPct), frac4(q.Precision), frac4(q.Recall),
		})
	}
	return []*Table{t}, nil
}

// AblationSubsetSize studies the unit-subset size (the paper fixes 200):
// finer subsets track the match-proportion curve more closely but reduce
// per-subset evidence.
func AblationSubsetSize(e *Env) ([]*Table, error) {
	ds, err := e.DS()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-subset",
		Title:  "unit subset size on DS (alpha=beta=0.9, HYBR averaged)",
		Header: []string{"subset size", "HYBR cost %", "precision", "recall", "success %"},
	}
	for _, size := range []int{50, 100, 200, 400} {
		b, err := newBundle("DS", ds.Pairs, size)
		if err != nil {
			return nil, err
		}
		avg, err := e.avgRuns(b, methodHybr, req, minInt(e.Runs, 10))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size), pct(avg.costPct),
			frac4(avg.precision), frac4(avg.recall), fmt.Sprintf("%.0f", avg.successPct),
		})
	}
	return []*Table{t}, nil
}

// AblationAllVsPartial compares the all-sampling solution (§VI-A) with the
// partial-sampling one (§VI-B) — the comparison the paper defers to its
// technical report, concluding partial sampling costs less.
func AblationAllVsPartial(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-allsamp",
		Title:  fmt.Sprintf("all-sampling vs partial-sampling (alpha=beta=theta=0.9, %d runs)", e.Runs),
		Header: []string{"dataset", "ALLSAMP cost %", "SAMP cost %", "ALLSAMP success %", "SAMP success %"},
	}
	for _, b := range bundles {
		all, err := e.avgRuns(b, methodAllSamp, req, e.Runs)
		if err != nil {
			return nil, err
		}
		part, err := e.avgRuns(b, methodSamp, req, e.Runs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			b.name, pct(all.costPct), pct(part.costPct),
			fmt.Sprintf("%.0f", all.successPct), fmt.Sprintf("%.0f", part.successPct),
		})
	}
	return []*Table{t}, nil
}

// AblationGPEpsilon studies Algorithm 1's error threshold epsilon: smaller
// values refine the Gaussian approximation with more probes (more sampling
// cost), larger values tolerate coarser fits.
func AblationGPEpsilon(e *Env) ([]*Table, error) {
	b, err := e.abBundle()
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-eps",
		Title:  fmt.Sprintf("Algorithm 1 epsilon on AB (alpha=beta=theta=0.9, %d runs)", minInt(e.Runs, 10)),
		Header: []string{"epsilon", "SAMP cost %", "precision", "recall", "success %"},
	}
	for _, eps := range []float64{0.02, 0.05, 0.10, 0.20} {
		var costPct, prec, rec, success float64
		runs := minInt(e.Runs, 10)
		for r := 0; r < runs; r++ {
			o := b.oracle()
			sol, err := core.PartialSamplingSearch(b.w, req, o, core.SamplingConfig{
				Epsilon: eps,
				Rand:    rand.New(rand.NewSource(e.Seed + int64(r)*31)),
			})
			if err != nil {
				return nil, err
			}
			labels := sol.Resolve(b.w, o)
			q, err := metrics.Evaluate(labels, b.truth)
			if err != nil {
				return nil, err
			}
			costPct += 100 * float64(o.Cost()) / float64(b.w.Len())
			prec += q.Precision
			rec += q.Recall
			if q.Precision >= req.Alpha && q.Recall >= req.Beta {
				success++
			}
		}
		n := float64(runs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", eps), pct(costPct / n),
			frac4(prec / n), frac4(rec / n), fmt.Sprintf("%.0f", 100*success/n),
		})
	}
	return []*Table{t}, nil
}

// AblationHumanError injects symmetric label noise into the human oracle and
// measures the quality degradation of the hybrid solution — quantifying the
// §IV discussion that HUMO's achievable quality is capped by the human's.
func AblationHumanError(e *Env) ([]*Table, error) {
	pairs, err := datagen.Logistic(datagen.LogisticConfig{
		N: e.syntheticSize(), Tau: 14, Sigma: 0.1,
		SubsetSize: e.subsetSize(), Seed: e.Seed,
	})
	if err != nil {
		return nil, err
	}
	b, err := newBundle("synthetic", pairs, e.subsetSize())
	if err != nil {
		return nil, err
	}
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	t := &Table{
		ID:     "ablation-human-error",
		Title:  "human error rate vs achieved quality (HYBR, synthetic tau=14 sigma=0.1)",
		Header: []string{"error rate", "precision", "recall", "cost %"},
	}
	for _, rate := range []float64{0, 0.02, 0.05, 0.10} {
		runs := minInt(e.Runs, 10)
		var prec, rec, costPct float64
		for r := 0; r < runs; r++ {
			seed := e.Seed + int64(r)*97
			o, err := oracle.NewNoisy(b.truthMap, rate, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			sol, err := core.HybridSearch(b.w, req, o, core.HybridConfig{
				Sampling: core.SamplingConfig{Rand: rand.New(rand.NewSource(seed))},
			})
			if err != nil {
				return nil, err
			}
			labels := sol.Resolve(b.w, o)
			q, err := metrics.Evaluate(labels, b.truth)
			if err != nil {
				return nil, err
			}
			prec += q.Precision
			rec += q.Recall
			costPct += 100 * float64(o.Cost()) / float64(b.w.Len())
		}
		n := float64(runs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate), frac4(prec / n), frac4(rec / n), pct(costPct / n),
		})
	}
	return []*Table{t}, nil
}
