package experiments

import (
	"strconv"
	"testing"
)

// TestCrowdCostHeadline pins the crowdcost headline: on the seeded DS-like
// bundle the CrowdER-style pipeline meets the same quality requirement as
// the flat batcher (success 100%) with strictly fewer HITs, and the saving
// is the exact figure below — the table is bit-identical for every worker
// count, so these cells are stable.
func TestCrowdCostHeadline(t *testing.T) {
	tables, err := Run(tinyEnv(), "crowdcost")
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("crowdcost rows = %d, want 3", len(tbl.Rows))
	}
	rows := make(map[string][]string, len(tbl.Rows))
	for _, row := range tbl.Rows {
		rows[row[0]] = row
	}

	// DS columns: 1 flat HITs, 2 crowd HITs, 3 HITs saved %, 4 votes
	// saved %, 5 success %.
	cell := func(row []string, col int) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", row[col], err)
		}
		return v
	}
	for _, level := range []string{"a=b=0.90", "a=b=0.95"} {
		row := rows[level]
		if row == nil {
			t.Fatalf("crowdcost has no %s row", level)
		}
		flat, crowd := cell(row, 1), cell(row, 2)
		if crowd >= flat {
			t.Errorf("%s: crowd HITs %.1f not strictly below flat %.1f", level, crowd, flat)
		}
		if row[5] != "100" {
			t.Errorf("%s: crowd success %s%%, want 100 (same requirement met as flat)", level, row[5])
		}
	}

	// The headline row, pinned cell by cell. If a legitimate change to the
	// generator, the search, or the crowd pipeline moves these, re-pin them
	// — but understand which stage moved first.
	headline := rows["a=b=0.90"]
	want := []string{"a=b=0.90", "181.0", "146.0", "19.34", "10.30", "100"}
	for i, w := range want {
		if headline[i] != w {
			t.Errorf("headline DS cell %d = %q, want %q (row %v)", i, headline[i], w, headline[:6])
		}
	}
}
