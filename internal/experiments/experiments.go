// Package experiments reproduces every results table and figure of the
// paper's §VIII evaluation. Each experiment id (table1, fig6, ...) has a
// runner that returns one or more result Tables printing the same rows or
// series the paper reports; cmd/humoexp exposes them on the command line and
// bench_test.go wraps each in a benchmark.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"humo/internal/core"
	"humo/internal/crowd"
	"humo/internal/datagen"
	"humo/internal/metrics"
	"humo/internal/oracle"
	"humo/internal/parallel"
)

// ErrUnknownExperiment reports an unregistered experiment id.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// Table is a rendered experimental result: an id matching the paper
// artifact, a caption, column headers and formatted rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	printRow(divider(widths))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func divider(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Scale selects the dataset sizes the harness runs at.
type Scale int

const (
	// ScaleSmall shrinks datasets and repetition counts so the full suite
	// finishes in well under a minute — used by tests and benchmarks.
	ScaleSmall Scale = iota
	// ScaleFull mirrors the paper's dataset scale and repetition counts.
	ScaleFull
)

// Env carries the materialized datasets and run parameters shared by the
// experiment runners. Datasets are generated lazily, cached, and safe to
// request from concurrent runners: each cache is guarded by a sync.Once that
// also latches the generation error, so every caller observes the same
// dataset (or the same failure) no matter which goroutine got there first.
type Env struct {
	Scale Scale
	// Runs is the number of repetitions for the stochastic approaches
	// (the paper averages over 100).
	Runs int
	// Seed drives all experiment-level randomness.
	Seed int64
	// Workers bounds the goroutines used when repetitions fan out in
	// avgRuns; <= 0 selects GOMAXPROCS. Repetition seeds are fixed per
	// index, so every worker count produces bit-identical tables.
	Workers int

	dsOnce, abOnce   sync.Once
	dsWOnce, abWOnce sync.Once
	ds, ab           *datagen.ERDataset
	dsErr, abErr     error
	dsW, abW         *workloadBundle
	dsWErr, abWErr   error
}

// NewEnv builds an environment. runs <= 0 selects the scale default
// (100 for full, 10 for small).
func NewEnv(scale Scale, runs int, seed int64) *Env {
	if runs <= 0 {
		if scale == ScaleFull {
			runs = 100
		} else {
			runs = 10
		}
	}
	return &Env{Scale: scale, Runs: runs, Seed: seed}
}

// workloadBundle couples a workload with its ground truth in both layouts.
// refs carries the pair→record mapping for crowd-workforce experiments; it
// is populated only for the DS/AB bundles (synthetic bundles have no record
// identities to cluster on).
type workloadBundle struct {
	name     string
	w        *core.Workload
	truthMap map[int]bool
	truth    []bool // aligned with sorted pair positions
	refs     []crowd.PairRef
}

func newBundle(name string, pairs []datagen.LabeledPair, subsetSize int) (*workloadBundle, error) {
	cp, truthMap := datagen.Split(pairs)
	w, err := core.NewWorkload(cp, subsetSize)
	if err != nil {
		return nil, err
	}
	return &workloadBundle{name: name, w: w, truthMap: truthMap, truth: datagen.TruthSlice(pairs)}, nil
}

func (b *workloadBundle) oracle() *oracle.Simulated { return oracle.NewSimulated(b.truthMap) }

// subsetSize returns the unit-subset size for the environment: the paper's
// 200 at full scale, 50 at small scale so the shrunken datasets still span
// a meaningful number of subsets.
func (e *Env) subsetSize() int {
	if e.Scale == ScaleFull {
		return core.DefaultSubsetSize
	}
	return 50
}

// DSConfig returns the generator configuration for the simulated
// DBLP-Scholar dataset at the environment's scale.
func (e *Env) DSConfig() datagen.DSConfig {
	cfg := datagen.DefaultDSConfig()
	if e.Scale == ScaleSmall {
		cfg.Entities = 600
		cfg.Filler = 6000
	}
	return cfg
}

// ABConfig returns the generator configuration for the simulated Abt-Buy
// dataset at the environment's scale.
func (e *Env) ABConfig() datagen.ABConfig {
	cfg := datagen.DefaultABConfig()
	if e.Scale == ScaleSmall {
		cfg.Entities = 260
		cfg.ExtraA = 8
		cfg.ExtraB = 10
	}
	return cfg
}

// DS returns the cached simulated DBLP-Scholar dataset. Safe for concurrent
// callers: the dataset is generated exactly once and the error is latched.
func (e *Env) DS() (*datagen.ERDataset, error) {
	e.dsOnce.Do(func() { e.ds, e.dsErr = datagen.DSLike(e.DSConfig()) })
	return e.ds, e.dsErr
}

// AB returns the cached simulated Abt-Buy dataset. Safe for concurrent
// callers.
func (e *Env) AB() (*datagen.ERDataset, error) {
	e.abOnce.Do(func() { e.ab, e.abErr = datagen.ABLike(e.ABConfig()) })
	return e.ab, e.abErr
}

func (e *Env) dsBundle() (*workloadBundle, error) {
	e.dsWOnce.Do(func() {
		ds, err := e.DS()
		if err != nil {
			e.dsWErr = err
			return
		}
		e.dsW, e.dsWErr = newBundle("DS", ds.Pairs, e.subsetSize())
		if e.dsWErr == nil {
			e.dsW.refs = ds.CrowdRefs()
		}
	})
	return e.dsW, e.dsWErr
}

func (e *Env) abBundle() (*workloadBundle, error) {
	e.abWOnce.Do(func() {
		ab, err := e.AB()
		if err != nil {
			e.abWErr = err
			return
		}
		e.abW, e.abWErr = newBundle("AB", ab.Pairs, e.subsetSize())
		if e.abWErr == nil {
			e.abW.refs = ab.CrowdRefs()
		}
	})
	return e.abW, e.abWErr
}

// runResult captures one approach run end to end.
type runResult struct {
	sol     core.Solution
	quality metrics.Quality
	cost    int // distinct manually labeled pairs (samples + DH)
	elapsed time.Duration
}

func (r runResult) costPct(w *core.Workload) float64 {
	return 100 * float64(r.cost) / float64(w.Len())
}

func (r runResult) met(req core.Requirement) bool {
	return r.quality.Precision >= req.Alpha && r.quality.Recall >= req.Beta
}

// Method names accepted by runMethod.
const (
	methodBase    = "BASE"
	methodSamp    = "SAMP"
	methodAllSamp = "ALLSAMP"
	methodHybr    = "HYBR"
	methodRisk    = "RISK"
)

// runMethod executes one optimization approach on the bundle with a fresh
// oracle and evaluates the resolved labeling against ground truth. workers
// is threaded into the search configuration so the environment's concurrency
// knob also pins the estimator-level precompute (it defaults to GOMAXPROCS
// when 0, which matters once a caller enables CoherentAggregation). The
// elapsed time covers only the machine search, matching the paper's runtime
// metric ("the reported runtime does not include ... the latency incurred by
// human verification").
func runMethod(b *workloadBundle, method string, req core.Requirement, seed int64, workers int) (runResult, error) {
	o := b.oracle()
	rng := rand.New(rand.NewSource(seed))
	sCfg := core.SamplingConfig{Rand: rng, Workers: workers}
	var (
		sol core.Solution
		err error
	)
	start := time.Now()
	switch method {
	case methodBase:
		sol, err = core.BaseSearch(b.w, req, o, core.BaseConfig{StartSubset: -1})
	case methodSamp:
		sol, err = core.PartialSamplingSearch(b.w, req, o, sCfg)
	case methodAllSamp:
		sol, err = core.AllSamplingSearch(b.w, req, o, sCfg)
	case methodHybr:
		sol, err = core.HybridSearch(b.w, req, o, core.HybridConfig{Sampling: sCfg})
	case methodRisk:
		sol, err = core.RiskSearch(b.w, req, o, core.RiskConfig{Sampling: sCfg})
	default:
		return runResult{}, fmt.Errorf("%w: method %q", ErrUnknownExperiment, method)
	}
	elapsed := time.Since(start)
	if err != nil {
		return runResult{}, fmt.Errorf("%s on %s: %w", method, b.name, err)
	}
	labels := sol.Resolve(b.w, o)
	q, err := metrics.Evaluate(labels, b.truth)
	if err != nil {
		return runResult{}, err
	}
	return runResult{sol: sol, quality: q, cost: o.Cost(), elapsed: elapsed}, nil
}

// avgRuns repeats a stochastic method `runs` times with distinct seeds and
// averages cost and quality; it also reports the success rate of meeting the
// requirement — the Tables III/IV protocol.
type avgResult struct {
	costPct     float64
	precision   float64
	recall      float64
	successPct  float64
	elapsedMean time.Duration
}

// avgRuns fans the repetitions out across Env.Workers goroutines. Every
// repetition r derives its seed from its index alone (e.Seed + r*7919, the
// sequential harness's formula), results are collected by index, and the
// averages are accumulated in index order afterwards — so the statistics are
// bit-identical for any worker count, including 1 (strictly sequential).
// Only elapsedMean is wall-clock and varies run to run regardless of workers.
func (e *Env) avgRuns(b *workloadBundle, method string, req core.Requirement, runs int) (avgResult, error) {
	if method == methodBase {
		// BASE is deterministic: one run suffices.
		runs = 1
	}
	results, err := parallel.Map(e.Workers, runs, func(r int) (runResult, error) {
		return runMethod(b, method, req, e.Seed+int64(r)*7919, e.Workers)
	})
	if err != nil {
		return avgResult{}, err
	}
	return summarize(results, b, req), nil
}

// summarize accumulates repetition results into the averaged statistics, in
// index order so the output is independent of how the runs were scheduled.
func summarize(results []runResult, b *workloadBundle, req core.Requirement) avgResult {
	var out avgResult
	var elapsed time.Duration
	success := 0
	for _, res := range results {
		out.costPct += res.costPct(b.w)
		out.precision += res.quality.Precision
		out.recall += res.quality.Recall
		elapsed += res.elapsed
		if res.met(req) {
			success++
		}
	}
	n := float64(len(results))
	out.costPct /= n
	out.precision /= n
	out.recall /= n
	out.successPct = 100 * float64(success) / n
	out.elapsedMean = time.Duration(int64(elapsed) / int64(len(results)))
	return out
}

// Runner executes one experiment and returns its result tables.
type Runner func(e *Env) ([]*Table, error)

// registry maps experiment ids to runners; populated by init() in the
// per-experiment files.
var registry = map[string]Runner{}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(e *Env, id string) ([]*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownExperiment, id, strings.Join(IDs(), ", "))
	}
	return r(e)
}

func pct(v float64) string   { return fmt.Sprintf("%.2f", v) }
func frac4(v float64) string { return fmt.Sprintf("%.4f", v) }
