package experiments

import (
	"fmt"

	"humo/internal/datagen"
	"humo/internal/metrics"
	"humo/internal/svm"
)

func init() {
	registry["fig4"] = Fig4
	registry["fig5"] = Fig5
	registry["table1"] = Table1
}

// Fig4 reproduces the matching-pair distributions of the two simulated real
// datasets (paper Fig. 4): the number of matching pairs per similarity
// bucket, plus overall workload statistics.
func Fig4(e *Env) ([]*Table, error) {
	ds, err := e.DS()
	if err != nil {
		return nil, err
	}
	ab, err := e.AB()
	if err != nil {
		return nil, err
	}
	out := make([]*Table, 0, 2)
	for _, d := range []*datagen.ERDataset{ds, ab} {
		const buckets = 20
		hist, err := datagen.Histogram(d.Pairs, 0, 1, buckets)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     "fig4",
			Title:  fmt.Sprintf("distribution of matching pairs, %s dataset", d.Name),
			Header: []string{"similarity", "# matching pairs"},
			Notes: []string{fmt.Sprintf("%s workload: %d pairs, %d matching (paper: DS 100077/5267, AB 313040/1085)",
				d.Name, len(d.Pairs), d.MatchCount())},
		}
		for b := 0; b < buckets; b++ {
			lo := float64(b) / buckets
			hi := float64(b+1) / buckets
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("[%.2f,%.2f)", lo, hi),
				fmt.Sprintf("%d", hist[b]),
			})
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 tabulates the logistic match-proportion function of Eq. 22 for the
// three steepness values the paper plots.
func Fig5(*Env) ([]*Table, error) {
	taus := []float64{8, 14, 18}
	t := &Table{
		ID:     "fig5",
		Title:  "logistic match-proportion function (Eq. 22)",
		Header: []string{"similarity", "tau=8", "tau=14", "tau=18"},
	}
	for v := 0.0; v <= 1.0001; v += 0.05 {
		row := []string{fmt.Sprintf("%.2f", v)}
		for _, tau := range taus {
			row = append(row, frac4(datagen.LogisticProportion(tau, v)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// svmReference trains the linear SVM on a labeled sample of the dataset and
// evaluates it on the remaining pairs — the machine-only quality reference
// of Table I.
func svmReference(d *datagen.ERDataset, trainSize int, seed int64) (metrics.Quality, error) {
	n := len(d.Pairs)
	if trainSize >= n {
		trainSize = n / 5
	}
	trainIdx, testIdx, err := svm.TrainTestSplit(n, trainSize, seed)
	if err != nil {
		return metrics.Quality{}, err
	}
	// Train on a class-balanced subsample (all positives of the training
	// sample plus an equal number of negatives), the standard protocol for
	// heavily imbalanced matching benchmarks; an unbalanced vanilla SVM
	// degenerates to the all-negative classifier here. No further
	// calibration — which is exactly why the reference collapses on AB
	// (paper Table I).
	var posIdx, negIdx []int
	for _, i := range trainIdx {
		if d.Pairs[i].Match {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	take := len(posIdx)
	if take > len(negIdx) {
		take = len(negIdx)
	}
	balanced := append(append([]int(nil), posIdx...), negIdx[:take]...)
	feats := make([][]float64, 0, len(balanced))
	labels := make([]bool, 0, len(balanced))
	for _, i := range balanced {
		f, err := d.Features(d.Pairs[i].ID)
		if err != nil {
			return metrics.Quality{}, err
		}
		feats = append(feats, f)
		labels = append(labels, d.Pairs[i].Match)
	}
	model, err := svm.Train(feats, labels, svm.Config{Seed: seed, PositiveWeight: 1})
	if err != nil {
		return metrics.Quality{}, err
	}
	predicted := make([]bool, 0, len(testIdx))
	truth := make([]bool, 0, len(testIdx))
	for _, i := range testIdx {
		f, err := d.Features(d.Pairs[i].ID)
		if err != nil {
			return metrics.Quality{}, err
		}
		predicted = append(predicted, model.Predict(f))
		truth = append(truth, d.Pairs[i].Match)
	}
	return metrics.Evaluate(predicted, truth)
}

// Table1 reproduces the SVM-based classification reference (paper Table I).
func Table1(e *Env) ([]*Table, error) {
	ds, err := e.DS()
	if err != nil {
		return nil, err
	}
	ab, err := e.AB()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table1",
		Title:  "SVM-based classification results (paper Table I: DS .87/.76/.81, AB .47/.35/.40)",
		Header: []string{"dataset", "precision", "recall", "f1"},
	}
	trainSize := 2000
	if e.Scale == ScaleSmall {
		trainSize = 500
	}
	for _, d := range []*datagen.ERDataset{ds, ab} {
		q, err := svmReference(d, trainSize, e.Seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d.Name, frac4(q.Precision), frac4(q.Recall), frac4(q.F1)})
	}
	return []*Table{t}, nil
}
