package experiments

import (
	"fmt"

	"humo/internal/core"
	"humo/internal/datagen"
)

func init() {
	registry["fig9"] = Fig9
	registry["fig10"] = Fig10
}

// syntheticBundle generates a logistic synthetic workload bundle.
func (e *Env) syntheticBundle(tau, sigma float64, n int, seed int64) (*workloadBundle, error) {
	pairs, err := datagen.Logistic(datagen.LogisticConfig{
		N: n, Tau: tau, Sigma: sigma, SubsetSize: e.subsetSize(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return newBundle(fmt.Sprintf("synthetic(tau=%.0f,sigma=%.1f)", tau, sigma), pairs, e.subsetSize())
}

func (e *Env) syntheticSize() int {
	if e.Scale == ScaleFull {
		return 100000
	}
	return 20000
}

// parameterSweep runs the three approaches across synthetic workloads and
// reports cost, precision and recall — the protocol of Figs. 9 and 10.
func (e *Env) parameterSweep(id, title, paramName string, params []float64, gen func(p float64) (*workloadBundle, error)) ([]*Table, error) {
	req := core.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	methods := []string{methodBase, methodSamp, methodHybr}
	cost := &Table{ID: id, Title: title + " — percentage of manual work",
		Header: []string{paramName, "BASE %", "SAMP %", "HYBR %"}}
	prec := &Table{ID: id, Title: title + " — achieved precision",
		Header: []string{paramName, "BASE", "SAMP", "HYBR"}}
	rec := &Table{ID: id, Title: title + " — achieved recall",
		Header: []string{paramName, "BASE", "SAMP", "HYBR"}}
	for _, p := range params {
		b, err := gen(p)
		if err != nil {
			return nil, err
		}
		costRow := []string{fmt.Sprintf("%.1f", p)}
		precRow := []string{fmt.Sprintf("%.1f", p)}
		recRow := []string{fmt.Sprintf("%.1f", p)}
		for _, m := range methods {
			avg, err := e.avgRuns(b, m, req, e.Runs)
			if err != nil {
				return nil, err
			}
			costRow = append(costRow, pct(avg.costPct))
			precRow = append(precRow, frac4(avg.precision))
			recRow = append(recRow, frac4(avg.recall))
		}
		cost.Rows = append(cost.Rows, costRow)
		prec.Rows = append(prec.Rows, precRow)
		rec.Rows = append(rec.Rows, recRow)
	}
	return []*Table{cost, prec, rec}, nil
}

// Fig9 varies the steepness tau of the logistic curve with sigma = 0.1
// (paper Fig. 9).
func Fig9(e *Env) ([]*Table, error) {
	taus := []float64{8, 10, 12, 14, 16, 18}
	return e.parameterSweep("fig9",
		fmt.Sprintf("varying tau, sigma=0.1, alpha=beta=theta=0.9, n=%d", e.syntheticSize()),
		"tau", taus,
		func(tau float64) (*workloadBundle, error) {
			return e.syntheticBundle(tau, 0.1, e.syntheticSize(), e.Seed+int64(tau*13))
		})
}

// Fig10 varies the per-subset irregularity sigma with tau = 14
// (paper Fig. 10). At sigma = 0.5 the monotonicity assumption no longer
// holds: BASE and HYBR are expected to miss precision there while SAMP
// still meets the requirement.
func Fig10(e *Env) ([]*Table, error) {
	sigmas := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	return e.parameterSweep("fig10",
		fmt.Sprintf("varying sigma, tau=14, alpha=beta=theta=0.9, n=%d", e.syntheticSize()),
		"sigma", sigmas,
		func(sigma float64) (*workloadBundle, error) {
			return e.syntheticBundle(14, sigma, e.syntheticSize(), e.Seed+int64(sigma*1000))
		})
}
