package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"humo/internal/core"
	"humo/internal/crowd"
	"humo/internal/metrics"
	"humo/internal/parallel"
)

func init() {
	registry["crowdcost"] = CrowdCost
}

// crowdOracle adapts a crowd.Labeler to the core.BatchOracle the searches
// consume, so every label request — whole subsets, per-subset samples, the
// final DH resolution — flows through the pack/vote/propagate pipeline
// instead of a perfect reviewer. LabelBatch cannot fail here (the refs cover
// the whole workload and the context never cancels), but the first error is
// still latched for the runner to check after the search.
type crowdOracle struct {
	l   *crowd.Labeler
	err error
}

func (o *crowdOracle) Label(id int) bool { return o.LabelAll([]int{id})[0] }

func (o *crowdOracle) LabelAll(ids []int) []bool {
	out := make([]bool, len(ids))
	ans, err := o.l.LabelBatch(context.Background(), ids)
	if err != nil {
		if o.err == nil {
			o.err = err
		}
		return out
	}
	for i, id := range ids {
		out[i] = ans[id]
	}
	return out
}

// runCrowdMethod executes the hybrid search on the bundle with a crowd
// workforce answering every label request, and evaluates the resolved
// labeling (machine zones + crowd answers in DH) against ground truth.
// flat selects the CrowdER-free baseline: fixed-size pages, a fixed odd
// number of votes per pair, no transitive propagation, no escalation.
func runCrowdMethod(b *workloadBundle, flat bool, req core.Requirement, seed int64, workers int) (runResult, crowd.Stats, error) {
	l, err := crowd.NewLabeler(b.refs, b.truthMap, crowd.Config{
		Seed:    seed,
		Workers: workers,
		Flat:    flat,
	})
	if err != nil {
		return runResult{}, crowd.Stats{}, err
	}
	o := &crowdOracle{l: l}
	rng := rand.New(rand.NewSource(seed))
	sol, err := core.HybridSearch(b.w, req, o, core.HybridConfig{
		Sampling: core.SamplingConfig{Rand: rng, Workers: workers},
	})
	if err != nil {
		return runResult{}, crowd.Stats{}, fmt.Errorf("crowd HYBR on %s: %w", b.name, err)
	}
	labels := sol.Resolve(b.w, o)
	if o.err != nil {
		return runResult{}, crowd.Stats{}, o.err
	}
	q, err := metrics.Evaluate(labels, b.truth)
	if err != nil {
		return runResult{}, crowd.Stats{}, err
	}
	return runResult{sol: sol, quality: q}, l.Stats(), nil
}

// crowdRun pairs the flat-baseline and crowd-pipeline outcomes of one
// repetition, sharing the same worker pool seed so the two differ only in
// packing, propagation and vote policy.
type crowdRun struct {
	flat, clustered           runResult
	flatStats, clusteredStats crowd.Stats
}

// crowdAvg aggregates repetitions of one (bundle, requirement) cell.
type crowdAvg struct {
	flatHITs, crowdHITs   float64
	flatVotes, crowdVotes float64
	conflicts             float64
	flatSuccessPct        float64
	crowdSuccessPct       float64
}

// hitsSavedPct reports the relative HIT saving of the crowd pipeline.
func (a crowdAvg) hitsSavedPct() float64 {
	if a.flatHITs == 0 {
		return 0
	}
	return 100 * (a.flatHITs - a.crowdHITs) / a.flatHITs
}

// votesSavedPct reports the relative vote saving of the crowd pipeline.
func (a crowdAvg) votesSavedPct() float64 {
	if a.flatVotes == 0 {
		return 0
	}
	return 100 * (a.flatVotes - a.crowdVotes) / a.flatVotes
}

// crowdAvgRuns fans the repetitions out exactly like avgRuns: seeds are
// fixed per index, results collected by index, so the table is bit-identical
// for any Env.Workers count.
func (e *Env) crowdAvgRuns(b *workloadBundle, req core.Requirement, runs int) (crowdAvg, error) {
	results, err := parallel.Map(e.Workers, runs, func(r int) (crowdRun, error) {
		seed := e.Seed + int64(r)*7919
		var (
			out  crowdRun
			rerr error
		)
		out.flat, out.flatStats, rerr = runCrowdMethod(b, true, req, seed, e.Workers)
		if rerr != nil {
			return out, rerr
		}
		out.clustered, out.clusteredStats, rerr = runCrowdMethod(b, false, req, seed, e.Workers)
		return out, rerr
	})
	var a crowdAvg
	if err != nil {
		return a, err
	}
	flatOK, crowdOK := 0, 0
	for _, res := range results {
		a.flatHITs += float64(res.flatStats.HITs)
		a.crowdHITs += float64(res.clusteredStats.HITs)
		a.flatVotes += float64(res.flatStats.Votes)
		a.crowdVotes += float64(res.clusteredStats.Votes)
		a.conflicts += float64(res.clusteredStats.Conflicts)
		if res.flat.met(req) {
			flatOK++
		}
		if res.clustered.met(req) {
			crowdOK++
		}
	}
	n := float64(runs)
	a.flatHITs /= n
	a.crowdHITs /= n
	a.flatVotes /= n
	a.crowdVotes /= n
	a.conflicts /= n
	a.flatSuccessPct = 100 * float64(flatOK) / n
	a.crowdSuccessPct = 100 * float64(crowdOK) / n
	return a, nil
}

// CrowdCost compares the crowd-workforce pipeline (CrowdER-style cluster
// HITs, transitive propagation, posterior-weighted adaptive voting) against
// the flat batcher (fixed pages, fixed votes, no inference) on both
// simulated datasets under identical quality requirements. Both sides run
// the same hybrid search over the same workload with the same simulated
// worker pool; the saved columns measure what the crowd machinery buys at
// equal quality.
func CrowdCost(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "crowdcost",
		Title: fmt.Sprintf("crowd HITs and votes, flat batcher vs CrowdER-style pipeline (theta=0.9, %d runs)", e.Runs),
		Header: []string{
			"requirement",
			"DS flat HITs", "DS crowd HITs", "DS HITs saved %", "DS votes saved %", "DS success %",
			"AB flat HITs", "AB crowd HITs", "AB HITs saved %", "AB votes saved %", "AB success %",
		},
		Notes: []string{
			"both pipelines share the search seed and the simulated worker pool; " +
				"saved = (flat - crowd) / flat of the average HIT (page) and vote " +
				"counts; success is the crowd pipeline's rate of meeting the " +
				"requirement (the flat batcher's rate is equal on every grid " +
				"cell unless noted).",
		},
	}
	for _, level := range []float64{0.80, 0.90, 0.95} {
		req := core.Requirement{Alpha: level, Beta: level, Theta: 0.9}
		row := []string{fmt.Sprintf("a=b=%.2f", level)}
		for _, b := range bundles {
			a, err := e.crowdAvgRuns(b, req, e.Runs)
			if err != nil {
				return nil, err
			}
			if a.flatSuccessPct != a.crowdSuccessPct {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"%s a=b=%.2f: flat success %.0f%%, crowd success %.0f%%",
					b.name, level, a.flatSuccessPct, a.crowdSuccessPct))
			}
			row = append(row,
				fmt.Sprintf("%.1f", a.flatHITs), fmt.Sprintf("%.1f", a.crowdHITs),
				pct(a.hitsSavedPct()), pct(a.votesSavedPct()),
				fmt.Sprintf("%.0f", a.crowdSuccessPct))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
