package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"humo/internal/core"
	"humo/internal/correct"
	"humo/internal/datagen"
	"humo/internal/metrics"
	"humo/internal/parallel"
	"humo/internal/svm"
)

func init() {
	registry["correctcost"] = CorrectCost
}

// machineLabelSet trains the Table I reference SVM (the class-balanced
// protocol of svmReference) and labels every pair of the dataset with the
// signed decision value as its confidence score — the machine label set the
// corrector then verifies.
func machineLabelSet(d *datagen.ERDataset, trainSize int, seed int64) ([]correct.Labeled, error) {
	n := len(d.Pairs)
	if trainSize >= n {
		trainSize = n / 5
	}
	trainIdx, _, err := svm.TrainTestSplit(n, trainSize, seed)
	if err != nil {
		return nil, err
	}
	var posIdx, negIdx []int
	for _, i := range trainIdx {
		if d.Pairs[i].Match {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	take := len(posIdx)
	if take > len(negIdx) {
		take = len(negIdx)
	}
	balanced := append(append([]int(nil), posIdx...), negIdx[:take]...)
	feats := make([][]float64, 0, len(balanced))
	labels := make([]bool, 0, len(balanced))
	for _, i := range balanced {
		f, err := d.Features(d.Pairs[i].ID)
		if err != nil {
			return nil, err
		}
		feats = append(feats, f)
		labels = append(labels, d.Pairs[i].Match)
	}
	model, err := svm.Train(feats, labels, svm.Config{Seed: seed, PositiveWeight: 1})
	if err != nil {
		return nil, err
	}
	out := make([]correct.Labeled, n)
	for i, p := range d.Pairs {
		f, err := d.Features(p.ID)
		if err != nil {
			return nil, err
		}
		dec := model.Decision(f)
		out[i] = correct.Labeled{ID: p.ID, Match: dec >= 0, Score: dec}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// runCorrect executes the risk-corrected verification (CORRECT) on the
// bundle against a machine label set, mirroring runMethod's protocol: fresh
// oracle, seeded rng, machine-search timing, quality against ground truth.
func runCorrect(b *workloadBundle, machine []correct.Labeled, req core.Requirement, seed int64, workers int) (runResult, error) {
	o := b.oracle()
	cfg := core.CorrectConfig{Labels: machine, Rand: rand.New(rand.NewSource(seed))}
	cfg.Schedule.Workers = workers
	start := time.Now()
	sol, labels, err := core.CorrectSearch(b.w, req, o, cfg)
	elapsed := time.Since(start)
	if err != nil {
		return runResult{}, fmt.Errorf("CORRECT on %s: %w", b.name, err)
	}
	q, err := metrics.Evaluate(labels, b.truth)
	if err != nil {
		return runResult{}, err
	}
	return runResult{sol: sol, quality: q, cost: o.Cost(), elapsed: elapsed}, nil
}

// avgCorrectRuns repeats the corrected verification like avgRuns repeats the
// search methods: per-index seeds, parallel fan-out, index-order statistics —
// bit-identical at any worker count.
func (e *Env) avgCorrectRuns(b *workloadBundle, machine []correct.Labeled, req core.Requirement, runs int) (avgResult, error) {
	results, err := parallel.Map(e.Workers, runs, func(r int) (runResult, error) {
		return runCorrect(b, machine, req, e.Seed+int64(r)*7919, e.Workers)
	})
	if err != nil {
		return avgResult{}, err
	}
	return summarize(results, b, req), nil
}

// CorrectCost compares the end-to-end human cost of three regimes under an
// identical quality requirement: the paper's best performer (HYBR), the
// risk-aware human-zone schedule (RISK, r-HUMO), and risk-corrected machine
// labels (CORRECT, the "correcting the machine" refinement of Chen et al.
// 2018): the reference SVM labels every pair up front and the human budget
// goes into verifying its riskiest labels until the corrected label set is
// certified. On DS the classifier is decent and correction buys the largest
// saving; on AB it collapses (Table I) and correction honestly degrades
// toward full verification.
func CorrectCost(e *Env) ([]*Table, error) {
	type armed struct {
		b       *workloadBundle
		machine []correct.Labeled
	}
	trainSize := 2000
	if e.Scale == ScaleSmall {
		trainSize = 500
	}
	var arms []armed
	for _, load := range []struct {
		data   func() (*datagen.ERDataset, error)
		bundle func() (*workloadBundle, error)
	}{
		{e.DS, e.dsBundle},
		{e.AB, e.abBundle},
	} {
		d, err := load.data()
		if err != nil {
			return nil, err
		}
		b, err := load.bundle()
		if err != nil {
			return nil, err
		}
		machine, err := machineLabelSet(d, trainSize, e.Seed)
		if err != nil {
			return nil, err
		}
		arms = append(arms, armed{b: b, machine: machine})
	}

	t := &Table{
		ID:    "correctcost",
		Title: fmt.Sprintf("human cost, hybrid vs risk schedule vs corrected machine labels (theta=0.9, %d runs)", e.Runs),
		Header: []string{
			"requirement",
			"DS HYBR %", "DS RISK %", "DS CORR %", "DS saved %", "DS success %",
			"AB HYBR %", "AB RISK %", "AB CORR %", "AB saved %", "AB success %",
		},
		Notes: []string{
			"CORR verifies the reference SVM's labels riskiest-first until certified; " +
				"saved = (HYBR - CORR) / HYBR of the average end-to-end human cost; " +
				"success is CORR's rate of actually meeting the requirement.",
			"negative saved means correcting this classifier costs more labels than " +
				"the hybrid search — the corrected regime only pays off when the " +
				"machine labels are worth verifying (DS yes, AB no, per Table I).",
		},
	}
	for _, level := range []float64{0.80, 0.85, 0.90, 0.95} {
		req := core.Requirement{Alpha: level, Beta: level, Theta: 0.9}
		row := []string{fmt.Sprintf("a=b=%.2f", level)}
		for _, arm := range arms {
			hybr, err := e.avgRuns(arm.b, methodHybr, req, e.Runs)
			if err != nil {
				return nil, err
			}
			risk, err := e.avgRuns(arm.b, methodRisk, req, e.Runs)
			if err != nil {
				return nil, err
			}
			corr, err := e.avgCorrectRuns(arm.b, arm.machine, req, e.Runs)
			if err != nil {
				return nil, err
			}
			saved := 0.0
			if hybr.costPct > 0 {
				saved = 100 * (hybr.costPct - corr.costPct) / hybr.costPct
			}
			row = append(row,
				pct(hybr.costPct), pct(risk.costPct), pct(corr.costPct), pct(saved),
				fmt.Sprintf("%.0f", corr.successPct))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
