package experiments

import (
	"reflect"
	"testing"

	"humo/internal/core"
	"humo/internal/parallel"
)

// TestAvgRunsWorkerCountInvariance asserts the Tables III/IV protocol
// produces bit-identical statistics whether the repetitions run on one
// worker or many: per-repetition seeds depend only on the repetition index
// and the averages are reduced in index order.
func TestAvgRunsWorkerCountInvariance(t *testing.T) {
	req := core.Requirement{Alpha: 0.85, Beta: 0.85, Theta: 0.9}
	run := func(workers int) avgResult {
		e := NewEnv(ScaleSmall, 4, 11)
		e.Workers = workers
		b, err := e.dsBundle()
		if err != nil {
			t.Fatal(err)
		}
		avg, err := e.avgRuns(b, methodSamp, req, e.Runs)
		if err != nil {
			t.Fatal(err)
		}
		return avg
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if par.costPct != seq.costPct || par.precision != seq.precision ||
			par.recall != seq.recall || par.successPct != seq.successPct {
			t.Errorf("workers=%d: avgRuns = %+v, sequential = %+v", workers, par, seq)
		}
	}
}

// TestRunWorkerCountInvariance asserts a full experiment emits identical
// tables with 1 worker and with many, for the same seed. table3 averages the
// stochastic SAMP approach over Env.Runs repetitions on both datasets — the
// exact protocol the parallel fan-out rewrites.
func TestRunWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []*Table {
		e := NewEnv(ScaleSmall, 3, 7)
		e.Workers = workers
		tables, err := Run(e, "table3")
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("table3 differs between 1 and 8 workers:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestEnvCachesConcurrent requests every lazily cached dataset and bundle
// from many goroutines at once: all callers must observe the exact same
// materialization (single initialization), and -race must stay silent.
func TestEnvCachesConcurrent(t *testing.T) {
	e := tinyEnv()
	type views struct {
		ds, ab   interface{}
		dsW, abW interface{}
	}
	got, err := parallel.Map(8, 32, func(int) (views, error) {
		ds, err := e.DS()
		if err != nil {
			return views{}, err
		}
		ab, err := e.AB()
		if err != nil {
			return views{}, err
		}
		dsW, err := e.dsBundle()
		if err != nil {
			return views{}, err
		}
		abW, err := e.abBundle()
		if err != nil {
			return views{}, err
		}
		return views{ds, ab, dsW, abW}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d observed different cache contents", i)
		}
	}
}
