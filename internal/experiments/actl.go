package experiments

import (
	"fmt"
	"math/rand"

	"humo/internal/actl"
	"humo/internal/core"
	"humo/internal/metrics"
)

func init() {
	registry["table5"] = Table5
	registry["table6"] = Table6
	registry["fig11"] = Fig11
}

// actlTargets is the target-precision grid of Tables V–VI and Fig. 11.
var actlTargets = []float64{0.75, 0.80, 0.85, 0.90, 0.95}

// actlComparison runs HUMO (the hybrid approach, with alpha = beta = target)
// against the active-learning baseline at each target precision, averaging
// both over Env.Runs repetitions.
type actlComparison struct {
	target      float64
	humoQ, actQ metrics.Quality
	humoPsi     float64 // percentage of manual work
	actPsi      float64
}

func (e *Env) compareWithACTL(b *workloadBundle) ([]actlComparison, error) {
	out := make([]actlComparison, 0, len(actlTargets))
	for _, target := range actlTargets {
		req := core.Requirement{Alpha: target, Beta: target, Theta: 0.9}
		var cmp actlComparison
		cmp.target = target
		for r := 0; r < e.Runs; r++ {
			seed := e.Seed + int64(r)*104729
			res, err := runMethod(b, methodHybr, req, seed, e.Workers)
			if err != nil {
				return nil, err
			}
			cmp.humoQ.Precision += res.quality.Precision
			cmp.humoQ.Recall += res.quality.Recall
			cmp.humoQ.F1 += res.quality.F1
			cmp.humoPsi += res.costPct(b.w)

			o := b.oracle()
			ar, err := actl.Search(b.w, target, o, actl.Config{
				SampleSize: 50,
				Rand:       rand.New(rand.NewSource(seed)),
			})
			if err != nil {
				return nil, err
			}
			q, err := metrics.Evaluate(ar.Labels(b.w), b.truth)
			if err != nil {
				return nil, err
			}
			cmp.actQ.Precision += q.Precision
			cmp.actQ.Recall += q.Recall
			cmp.actQ.F1 += q.F1
			cmp.actPsi += 100 * float64(o.Cost()) / float64(b.w.Len())
		}
		n := float64(e.Runs)
		cmp.humoQ.Precision /= n
		cmp.humoQ.Recall /= n
		cmp.humoQ.F1 /= n
		cmp.humoPsi /= n
		cmp.actQ.Precision /= n
		cmp.actQ.Recall /= n
		cmp.actQ.F1 /= n
		cmp.actPsi /= n
		out = append(out, cmp)
	}
	return out, nil
}

// actlTable renders the Tables V/VI layout: achieved recall of both methods,
// manual-work percentages, and the extra human cost HUMO pays per 1%
// absolute recall improvement.
func (e *Env) actlTable(id string, b *workloadBundle) ([]*Table, error) {
	cmps, err := e.compareWithACTL(b)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("HUMO vs ACTL on %s (%d runs)", b.name, e.Runs),
		Header: []string{"target precision", "HUMO recall", "ACTL recall", "HUMO psi %", "ACTL psi %", "dpsi/(100*dRecall)"},
	}
	for _, c := range cmps {
		ratio := "n/a"
		if dr := c.humoQ.Recall - c.actQ.Recall; dr > 1e-9 {
			ratio = frac4((c.humoPsi - c.actPsi) / (100 * dr))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", c.target),
			frac4(c.humoQ.Recall), frac4(c.actQ.Recall),
			pct(c.humoPsi), pct(c.actPsi),
			ratio,
		})
	}
	return []*Table{t}, nil
}

// Table5 reproduces the HUMO-vs-ACTL comparison on DS (paper Table V).
func Table5(e *Env) ([]*Table, error) {
	b, err := e.dsBundle()
	if err != nil {
		return nil, err
	}
	return e.actlTable("table5", b)
}

// Table6 reproduces the HUMO-vs-ACTL comparison on AB (paper Table VI).
func Table6(e *Env) ([]*Table, error) {
	b, err := e.abBundle()
	if err != nil {
		return nil, err
	}
	return e.actlTable("table6", b)
}

// Fig11 reports the additional manual work HUMO incurs per 1% absolute F1
// improvement over ACTL, on both datasets (paper Fig. 11).
func Fig11(e *Env) ([]*Table, error) {
	bundles, err := e.bothBundles()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("manual work for 1%% absolute F1 improvement over ACTL (%d runs)", e.Runs),
		Header: []string{"target precision", "DS dpsi/(100*dF1)", "AB dpsi/(100*dF1)"},
	}
	cols := make([][]string, len(actlTargets))
	for i := range cols {
		cols[i] = []string{fmt.Sprintf("%.2f", actlTargets[i])}
	}
	for _, b := range bundles {
		cmps, err := e.compareWithACTL(b)
		if err != nil {
			return nil, err
		}
		for i, c := range cmps {
			cell := "n/a"
			if df := c.humoQ.F1 - c.actQ.F1; df > 1e-9 {
				cell = frac4((c.humoPsi - c.actPsi) / (100 * df))
			}
			cols[i] = append(cols[i], cell)
		}
	}
	t.Rows = cols
	return []*Table{t}, nil
}
