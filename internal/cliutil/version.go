package cliutil

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// VersionString renders the one-line output of the -version flag shared by
// the humo binaries: the command name, the module version, the VCS revision
// the binary was built from (with a +dirty marker for modified trees) and
// the Go toolchain. Every field degrades gracefully — a test binary or a
// non-VCS build still produces a meaningful line.
func VersionString(cmd string) string {
	info, ok := debug.ReadBuildInfo()
	return versionString(cmd, info, ok)
}

// versionString is the testable core: build info is injected.
func versionString(cmd string, info *debug.BuildInfo, ok bool) string {
	version := "(devel)"
	revision := ""
	dirty := false
	if ok && info != nil {
		if v := info.Main.Version; v != "" {
			version = v
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", cmd, version)
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		fmt.Fprintf(&b, " (%s)", revision)
	}
	fmt.Fprintf(&b, " %s", runtime.Version())
	return b.String()
}
