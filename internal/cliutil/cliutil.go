// Package cliutil validates command-line parameters shared by the humo
// binaries at flag-parse time, so a bad -alpha fails with one clear line on
// stderr instead of an ErrBadRequirement surfacing from deep inside a
// search (possibly after minutes of blocking and scoring).
package cliutil

import (
	"fmt"
	"strings"

	"humo/internal/blocking"
)

// ValidateRequirement checks the quality-requirement flags: -alpha and
// -beta must lie in (0,1], -theta in (0,1). The messages name the flag the
// user has to fix.
func ValidateRequirement(alpha, beta, theta float64) error {
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("-alpha %v out of range: required precision must be in (0,1]", alpha)
	}
	if !(beta > 0 && beta <= 1) {
		return fmt.Errorf("-beta %v out of range: required recall must be in (0,1]", beta)
	}
	if !(theta > 0 && theta < 1) {
		return fmt.Errorf("-theta %v out of range: confidence must be in (0,1) — 1 would demand certainty from a sample", theta)
	}
	return nil
}

// ValidateThreshold checks the candidate-similarity threshold flag:
// -threshold must lie in [0,1). A cutoff of 1 is rejected deliberately:
// it keeps only exact-similarity-1 pairs, degenerating the workload to
// pairs that need no human/machine division at all — almost always a
// mistyped flag rather than an intent.
func ValidateThreshold(threshold float64) error {
	if !(threshold >= 0 && threshold < 1) {
		return fmt.Errorf("-threshold %v out of range: similarity cutoff must be in [0,1)", threshold)
	}
	return nil
}

// ValidateNonNegative checks a count flag that must not be negative
// (e.g. -runs, -parallel, -min-shared).
func ValidateNonNegative(flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s %d out of range: must be >= 0", flag, v)
	}
	return nil
}

// ParseAttributeSpecs parses the -spec flag shared by humo and humogen:
// comma-separated name:kind entries, where kind is one of jaccard,
// jarowinkler, levenshtein or cosine. Weights are left zero, selecting the
// distinct-value weighting rule downstream.
func ParseAttributeSpecs(s string) ([]blocking.AttributeSpec, error) {
	var out []blocking.AttributeSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 2 || fields[0] == "" {
			return nil, fmt.Errorf("bad spec %q (want name:kind)", part)
		}
		kind, err := blocking.ParseKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("spec %q: unknown similarity kind %q", part, fields[1])
		}
		out = append(out, blocking.AttributeSpec{Attribute: fields[0], Kind: kind})
	}
	return out, nil
}
