package cliutil

import (
	"runtime/debug"
	"strings"
	"testing"

	"humo/internal/blocking"
)

func TestValidateRequirement(t *testing.T) {
	if err := ValidateRequirement(0.9, 0.9, 0.9); err != nil {
		t.Fatalf("valid requirement rejected: %v", err)
	}
	cases := []struct {
		alpha, beta, theta float64
		wantFlag           string
	}{
		{0, 0.9, 0.9, "-alpha"},
		{1.2, 0.9, 0.9, "-alpha"},
		{0.9, -0.1, 0.9, "-beta"},
		{0.9, 0.9, 0, "-theta"},
		{0.9, 0.9, 1, "-theta"},
	}
	for _, c := range cases {
		err := ValidateRequirement(c.alpha, c.beta, c.theta)
		if err == nil {
			t.Errorf("(%v,%v,%v) accepted", c.alpha, c.beta, c.theta)
			continue
		}
		if !strings.Contains(err.Error(), c.wantFlag) {
			t.Errorf("(%v,%v,%v): message %q does not name %s", c.alpha, c.beta, c.theta, err, c.wantFlag)
		}
	}
	// Boundary values the domains do allow.
	if err := ValidateRequirement(1, 1, 0.999); err != nil {
		t.Errorf("alpha=beta=1 rejected: %v", err)
	}
}

func TestValidateThreshold(t *testing.T) {
	if err := ValidateThreshold(0); err != nil {
		t.Errorf("threshold 0 rejected: %v", err)
	}
	if err := ValidateThreshold(0.99); err != nil {
		t.Errorf("threshold 0.99 rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if err := ValidateThreshold(bad); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
}

func TestValidateNonNegative(t *testing.T) {
	if err := ValidateNonNegative("-runs", 0); err != nil {
		t.Errorf("0 rejected: %v", err)
	}
	if err := ValidateNonNegative("-runs", -1); err == nil {
		t.Error("-1 accepted")
	} else if !strings.Contains(err.Error(), "-runs") {
		t.Errorf("message %q does not name the flag", err)
	}
}

func TestParseAttributeSpecs(t *testing.T) {
	specs, err := ParseAttributeSpecs("title:jaccard, authors:cosine,venue:jarowinkler,isbn:levenshtein")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("%d specs, want 4", len(specs))
	}
	want := []struct {
		attr string
		kind blocking.Kind
	}{
		{"title", blocking.KindJaccard},
		{"authors", blocking.KindCosine},
		{"venue", blocking.KindJaroWinkler},
		{"isbn", blocking.KindLevenshtein},
	}
	for i, w := range want {
		if specs[i].Attribute != w.attr || specs[i].Kind != w.kind || specs[i].Weight != 0 {
			t.Errorf("spec %d = %+v, want %s:%v weight 0", i, specs[i], w.attr, w.kind)
		}
	}
	for _, bad := range []string{"", "title", "title:nope", ":jaccard", "a:jaccard,"} {
		if _, err := ParseAttributeSpecs(bad); err == nil {
			t.Errorf("ParseAttributeSpecs(%q) succeeded, want error", bad)
		}
	}
}

func TestVersionString(t *testing.T) {
	got := VersionString("humo")
	if !strings.HasPrefix(got, "humo ") {
		t.Errorf("VersionString %q does not lead with the command name", got)
	}
	if !strings.Contains(got, "go1") {
		t.Errorf("VersionString %q lacks the Go toolchain version", got)
	}

	// Injected build info exercises every field, including truncation and
	// the dirty marker.
	info := &debug.BuildInfo{}
	info.Main.Version = "v1.2.3"
	info.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.modified", Value: "true"},
	}
	got = versionString("humod", info, true)
	for _, want := range []string{"humod v1.2.3", "0123456789ab+dirty"} {
		if !strings.Contains(got, want) {
			t.Errorf("versionString = %q, want it to contain %q", got, want)
		}
	}
	if strings.Contains(got, "0123456789abc") {
		t.Errorf("versionString = %q: revision not truncated to 12 chars", got)
	}

	// No build info at all still yields a usable line.
	if got := versionString("humoexp", nil, false); !strings.HasPrefix(got, "humoexp (devel)") {
		t.Errorf("versionString without build info = %q", got)
	}
}
