package cliutil

import (
	"strings"
	"testing"
)

func TestValidateRequirement(t *testing.T) {
	if err := ValidateRequirement(0.9, 0.9, 0.9); err != nil {
		t.Fatalf("valid requirement rejected: %v", err)
	}
	cases := []struct {
		alpha, beta, theta float64
		wantFlag           string
	}{
		{0, 0.9, 0.9, "-alpha"},
		{1.2, 0.9, 0.9, "-alpha"},
		{0.9, -0.1, 0.9, "-beta"},
		{0.9, 0.9, 0, "-theta"},
		{0.9, 0.9, 1, "-theta"},
	}
	for _, c := range cases {
		err := ValidateRequirement(c.alpha, c.beta, c.theta)
		if err == nil {
			t.Errorf("(%v,%v,%v) accepted", c.alpha, c.beta, c.theta)
			continue
		}
		if !strings.Contains(err.Error(), c.wantFlag) {
			t.Errorf("(%v,%v,%v): message %q does not name %s", c.alpha, c.beta, c.theta, err, c.wantFlag)
		}
	}
	// Boundary values the domains do allow.
	if err := ValidateRequirement(1, 1, 0.999); err != nil {
		t.Errorf("alpha=beta=1 rejected: %v", err)
	}
}

func TestValidateThreshold(t *testing.T) {
	if err := ValidateThreshold(0); err != nil {
		t.Errorf("threshold 0 rejected: %v", err)
	}
	if err := ValidateThreshold(0.99); err != nil {
		t.Errorf("threshold 0.99 rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if err := ValidateThreshold(bad); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
}

func TestValidateNonNegative(t *testing.T) {
	if err := ValidateNonNegative("-runs", 0); err != nil {
		t.Errorf("0 rejected: %v", err)
	}
	if err := ValidateNonNegative("-runs", -1); err == nil {
		t.Error("-1 accepted")
	} else if !strings.Contains(err.Error(), "-runs") {
		t.Errorf("message %q does not name the flag", err)
	}
}
