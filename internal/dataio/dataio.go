// Package dataio reads and writes the CSV artifacts a HUMO deployment on
// real data exchanges with its surroundings: record tables, human label
// files, pending-review queues and final resolution results. It exists so
// cmd/humo can drive the whole pipeline file-to-file; the formats are plain
// CSV with a header row.
package dataio

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"humo/internal/blocking"
	"humo/internal/core"
	"humo/internal/records"
)

// ErrBadFormat reports malformed input data.
var ErrBadFormat = errors.New("dataio: bad format")

// Metadata embedded in CSV artifacts rides in leading comment lines of the
// form `# key: value`. Folding metadata into the data file itself — instead
// of a sidecar written in a second syscall — makes artifact-plus-metadata a
// single atomic rename: there is no kill window in which the data exists
// without its fingerprint (or, worse, next to a stale one). Readers that
// predate a given key skip comment lines wholesale, and the legacy sidecar
// files remain readable, so both directions stay compatible.

// readMeta consumes the leading `# key: value` comment lines of br and
// returns them as a map (empty when the stream starts with data). Malformed
// comment lines are skipped, not errors: comments are a metadata channel,
// never load-bearing for parsing the data that follows.
func readMeta(br *bufio.Reader) (map[string]string, error) {
	meta := map[string]string{}
	for {
		b, err := br.Peek(1)
		if err == io.EOF || (err == nil && b[0] != '#') {
			return meta, nil
		}
		if err != nil {
			return nil, err
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "#"))
		if k, v, ok := strings.Cut(body, ":"); ok {
			meta[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
		if err == io.EOF {
			return meta, nil
		}
	}
}

// writeMeta writes one `# key: value` metadata comment line.
func writeMeta(w io.Writer, key, value string) error {
	_, err := fmt.Fprintf(w, "# %s: %s\n", key, value)
	return err
}

// ReadTable parses a CSV with a header row into a record table: every
// column is an attribute, every subsequent row a record (ids are row
// positions). EntityID is set to the record's own id — ground truth is
// unknown for real data and never read by the algorithms.
func ReadTable(r io.Reader, name string) (*records.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("%w: empty header", ErrBadFormat)
	}
	t := &records.Table{Name: name, Attributes: append([]string(nil), header...)}
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrBadFormat, i+2, len(row), len(header))
		}
		t.Records = append(t.Records, records.Record{
			ID:       i,
			EntityID: i,
			Values:   append([]string(nil), row...),
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTable writes a record table as CSV (header row + one row per
// record), the inverse of ReadTable.
func WriteTable(w io.Writer, t *records.Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Attributes); err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := cw.Write(r.Values); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Labels maps candidate-pair ids to human match/unmatch answers.
type Labels map[int]bool

// ReadLabels parses a label CSV of the form `pair_id,label` (header row
// required; label is true/false, 1/0, match/unmatch, yes/no —
// case-insensitive via ParseBool plus the match/unmatch forms).
func ReadLabels(r io.Reader) (Labels, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#' // workload metadata lines (WriteLabelsGuarded)
	header, err := cr.Read()
	if err == io.EOF {
		return Labels{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("%w: label header needs pair_id,label", ErrBadFormat)
	}
	out := Labels{}
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		if len(row) < 2 {
			return nil, fmt.Errorf("%w: row %d has %d fields, want >= 2", ErrBadFormat, i+2, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: pair id %q", ErrBadFormat, i+2, row[0])
		}
		label, err := ParseLabel(row[1])
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		out[id] = label
	}
	return out, nil
}

// ParseLabel parses one human answer: match/unmatch, m/u, yes/no, y/n or
// anything strconv.ParseBool accepts. The same forms work in label CSVs and
// at the interactive prompt.
func ParseLabel(s string) (bool, error) {
	switch s {
	case "match", "Match", "MATCH", "yes", "y", "m":
		return true, nil
	case "unmatch", "Unmatch", "UNMATCH", "no", "n", "u":
		return false, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("label %q not recognized", s)
	}
	return v, nil
}

// WriteLabelsGuarded writes a label CSV with the workload fingerprint the
// labels were collected for folded into a leading `# workload: ...`
// comment: one atomic write pins the labels to their candidate set, where
// the `.workload` sidecar had a kill window between the label write and the
// guard write. ReadLabelsWorkload reads the guard back; plain ReadLabels
// skips it.
func WriteLabelsGuarded(w io.Writer, labels Labels, workload string) error {
	if workload != "" {
		if err := writeMeta(w, "workload", workload); err != nil {
			return err
		}
	}
	return WriteLabels(w, labels)
}

// ReadLabelsWorkload reads a label CSV plus the workload fingerprint
// embedded by WriteLabelsGuarded — empty when absent (legacy files guarded
// by a sidecar, or hand-built ones).
func ReadLabelsWorkload(r io.Reader) (Labels, string, error) {
	br := bufio.NewReader(r)
	meta, err := readMeta(br)
	if err != nil {
		return nil, "", err
	}
	labels, err := ReadLabels(br)
	return labels, meta["workload"], err
}

// WriteLabels writes a label CSV, sorted by pair id.
func WriteLabels(w io.Writer, labels Labels) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair_id", "label"}); err != nil {
		return err
	}
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		label := "unmatch"
		if labels[id] {
			label = "match"
		}
		if err := cw.Write([]string{strconv.Itoa(id), label}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScoredLabel is one machine-classifier output: the predicted match/unmatch
// label plus the classifier's real-valued confidence score (any scale,
// monotone in match propensity — SVM decision values, Fellegi-Sunter weights,
// posterior probabilities).
type ScoredLabel struct {
	Match bool
	Score float64
}

// ScoredLabels maps candidate-pair ids to classifier labels. It is the
// ingestion format for externally supplied matcher output
// (`humo -classifier file`, humod's "correct" session spec).
type ScoredLabels map[int]ScoredLabel

// WriteScoredLabels writes a classifier label CSV of the form
// `pair_id,label,score` (sorted by pair id) with the fingerprint of the
// workload the labels were computed for folded into a leading
// `# fingerprint: ...` comment — the same embedded-guard convention as
// WritePairsFingerprinted, so one atomic write pins the labels to their
// candidate set. Pass an empty fingerprint to omit the guard.
func WriteScoredLabels(w io.Writer, labels ScoredLabels, fingerprint string) error {
	if fingerprint != "" {
		if err := writeMeta(w, "fingerprint", fingerprint); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair_id", "label", "score"}); err != nil {
		return err
	}
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := labels[id]
		label := "unmatch"
		if l.Match {
			label = "match"
		}
		if err := cw.Write([]string{
			strconv.Itoa(id),
			label,
			strconv.FormatFloat(l.Score, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadScoredLabels parses a classifier label CSV (`pair_id,label,score`,
// header row required; labels in every ParseLabel form) plus the workload
// fingerprint embedded by WriteScoredLabels — empty, not an error, for
// unguarded files. Scores must be finite: a NaN confidence cannot be ranked.
func ReadScoredLabels(r io.Reader) (ScoredLabels, string, error) {
	br := bufio.NewReader(r)
	meta, err := readMeta(br)
	if err != nil {
		return nil, "", err
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	header, err := cr.Read()
	if err != nil {
		return nil, "", fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if len(header) < 3 || header[0] != "pair_id" {
		return nil, "", fmt.Errorf("%w: scored-label header needs pair_id,label,score (got %v)", ErrBadFormat, header)
	}
	out := ScoredLabels{}
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		if len(row) < 3 {
			return nil, "", fmt.Errorf("%w: row %d has %d fields, want >= 3", ErrBadFormat, i+2, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, "", fmt.Errorf("%w: row %d: pair id %q", ErrBadFormat, i+2, row[0])
		}
		if _, dup := out[id]; dup {
			return nil, "", fmt.Errorf("%w: row %d: duplicate pair id %d", ErrBadFormat, i+2, id)
		}
		match, err := ParseLabel(row[1])
		if err != nil {
			return nil, "", fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		score, err := strconv.ParseFloat(row[2], 64)
		if err != nil || math.IsNaN(score) || math.IsInf(score, 0) {
			return nil, "", fmt.Errorf("%w: row %d: score %q", ErrBadFormat, i+2, row[2])
		}
		out[id] = ScoredLabel{Match: match, Score: score}
	}
	return out, meta["fingerprint"], nil
}

// WriteFileAtomic writes via a temp file in the same directory, fsyncs it,
// renames it over the target, and fsyncs the directory — so the target is
// never left truncated or half-written, even across a power failure. It is
// the write discipline behind both cmd/humo's label files and the humod
// checkpoint journal.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadPairs parses a workload CSV of the form `pair_id,similarity` (header
// row required) into the instance pairs a Workload is built from. It is the
// format humod's workload-file session references use.
func ReadPairs(r io.Reader) ([]core.Pair, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#' // fingerprint metadata lines (WritePairsFingerprinted)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	// Insist on the named header: a headerless file would otherwise lose
	// its first pair silently, changing the workload fingerprint.
	if len(header) < 2 || header[0] != "pair_id" {
		return nil, fmt.Errorf("%w: pair header needs pair_id,similarity (got %v)", ErrBadFormat, header)
	}
	var out []core.Pair
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		if len(row) < 2 {
			return nil, fmt.Errorf("%w: row %d has %d fields, want >= 2", ErrBadFormat, i+2, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: pair id %q", ErrBadFormat, i+2, row[0])
		}
		sim, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: similarity %q", ErrBadFormat, i+2, row[1])
		}
		out = append(out, core.Pair{ID: id, Sim: sim})
	}
	return out, nil
}

// WritePairs writes a workload CSV, the inverse of ReadPairs.
func WritePairs(w io.Writer, pairs []core.Pair) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair_id", "similarity"}); err != nil {
		return err
	}
	for _, p := range pairs {
		if err := cw.Write([]string{strconv.Itoa(p.ID), strconv.FormatFloat(p.Sim, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePairsFingerprinted writes a workload CSV with its fingerprint folded
// into a leading `# fingerprint: ...` comment, so one atomic file write
// carries both the data and its identity — the writers that used to pair
// the CSV with an `.fp` sidecar had a kill window between the two syscalls
// in which the pair disagreed. ReadPairs skips the comment; readers that
// care about the fingerprint use ReadPairsFingerprint.
func WritePairsFingerprinted(w io.Writer, pairs []core.Pair, fingerprint string) error {
	if fingerprint != "" {
		if err := writeMeta(w, "fingerprint", fingerprint); err != nil {
			return err
		}
	}
	return WritePairs(w, pairs)
}

// ReadPairsFingerprint reads a workload CSV plus the fingerprint embedded
// by WritePairsFingerprinted. The fingerprint is empty — not an error — for
// files without one (pre-fingerprint writers, hand-built CSVs).
func ReadPairsFingerprint(r io.Reader) ([]core.Pair, string, error) {
	br := bufio.NewReader(r)
	meta, err := readMeta(br)
	if err != nil {
		return nil, "", err
	}
	pairs, err := ReadPairs(br)
	return pairs, meta["fingerprint"], err
}

// WriteCandidates writes scored candidate pairs as CSV
// (`pair_id,record_a,record_b,similarity`): the full output of candidate
// generation, with record positions preserved so a resolution run can show
// both records of a pair without regenerating candidates. Similarities are
// formatted to round-trip bit-exactly.
func WriteCandidates(w io.Writer, cands []blocking.Pair) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair_id", "record_a", "record_b", "similarity"}); err != nil {
		return err
	}
	for i, c := range cands {
		if err := cw.Write([]string{
			strconv.Itoa(i),
			strconv.Itoa(c.A),
			strconv.Itoa(c.B),
			strconv.FormatFloat(c.Sim, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCandidates parses a candidates CSV, the inverse of WriteCandidates.
// Pair ids are positional (candidate i has id i); a file whose pair_id
// column disagrees with row positions is refused, because label files and
// checkpoints key on those positions.
func ReadCandidates(r io.Reader) ([]blocking.Pair, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if len(header) < 4 || header[0] != "pair_id" {
		return nil, fmt.Errorf("%w: candidates header needs pair_id,record_a,record_b,similarity (got %v)", ErrBadFormat, header)
	}
	var out []blocking.Pair
	for i := 0; ; i++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadFormat, i+2, err)
		}
		if len(row) < 4 {
			return nil, fmt.Errorf("%w: row %d has %d fields, want >= 4", ErrBadFormat, i+2, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil || id != i {
			return nil, fmt.Errorf("%w: row %d: pair id %q, want positional id %d", ErrBadFormat, i+2, row[0], i)
		}
		a, err := strconv.Atoi(row[1])
		if err != nil || a < 0 {
			return nil, fmt.Errorf("%w: row %d: record_a %q", ErrBadFormat, i+2, row[1])
		}
		b, err := strconv.Atoi(row[2])
		if err != nil || b < 0 {
			return nil, fmt.Errorf("%w: row %d: record_b %q", ErrBadFormat, i+2, row[2])
		}
		sim, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: similarity %q", ErrBadFormat, i+2, row[3])
		}
		out = append(out, blocking.Pair{A: a, B: b, Sim: sim})
	}
	return out, nil
}

// WritePending writes the review queue for the human: one row per pair that
// needs a label, with both records' attribute values side by side so the
// reviewer can decide without opening the source tables.
func WritePending(w io.Writer, ids []int, cands []blocking.Pair, ta, tb *records.Table) error {
	cw := csv.NewWriter(w)
	header := []string{"pair_id", "similarity"}
	for _, a := range ta.Attributes {
		header = append(header, "a_"+a)
	}
	for _, a := range tb.Attributes {
		header = append(header, "b_"+a)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, id := range ids {
		if id < 0 || id >= len(cands) {
			return fmt.Errorf("%w: pending pair id %d out of range", ErrBadFormat, id)
		}
		c := cands[id]
		row := []string{strconv.Itoa(id), strconv.FormatFloat(c.Sim, 'f', 4, 64)}
		row = append(row, ta.Records[c.A].Values...)
		row = append(row, tb.Records[c.B].Values...)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ResultRow is one line of the final resolution output.
type ResultRow struct {
	PairID int
	A, B   int
	Sim    float64
	Match  bool
	Source string // "machine" or "human"
}

// WriteResults writes the final labeling as CSV.
func WriteResults(w io.Writer, rows []ResultRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair_id", "record_a", "record_b", "similarity", "label", "source"}); err != nil {
		return err
	}
	for _, r := range rows {
		label := "unmatch"
		if r.Match {
			label = "match"
		}
		if err := cw.Write([]string{
			strconv.Itoa(r.PairID),
			strconv.Itoa(r.A),
			strconv.Itoa(r.B),
			strconv.FormatFloat(r.Sim, 'f', 4, 64),
			label,
			r.Source,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
