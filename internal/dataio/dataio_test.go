package dataio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"humo/internal/blocking"
	"humo/internal/core"
	"humo/internal/records"
)

func TestReadTable(t *testing.T) {
	csvData := "title,venue\npaper one,icde\npaper two,vldb\n"
	tab, err := ReadTable(strings.NewReader(csvData), "pubs")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "pubs" || tab.Len() != 2 {
		t.Fatalf("table = %q len %d", tab.Name, tab.Len())
	}
	if tab.Records[1].Values[1] != "vldb" {
		t.Errorf("record content wrong: %+v", tab.Records[1])
	}
	if tab.Records[0].ID != 0 || tab.Records[1].ID != 1 {
		t.Error("record ids must be row positions")
	}
}

func TestReadTableErrors(t *testing.T) {
	if _, err := ReadTable(strings.NewReader(""), "x"); !errors.Is(err, ErrBadFormat) {
		t.Error("empty input should fail")
	}
	if _, err := ReadTable(strings.NewReader("a,b\n1\n"), "x"); !errors.Is(err, ErrBadFormat) {
		t.Error("short row should fail")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab := &records.Table{
		Name:       "t",
		Attributes: []string{"name", "desc"},
		Records: []records.Record{
			{ID: 0, EntityID: 0, Values: []string{"a, with comma", "x"}},
			{ID: 1, EntityID: 1, Values: []string{"b\nnewline", "y"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost records: %d", back.Len())
	}
	for i := range tab.Records {
		for j := range tab.Records[i].Values {
			if back.Records[i].Values[j] != tab.Records[i].Values[j] {
				t.Errorf("value (%d,%d) = %q, want %q", i, j, back.Records[i].Values[j], tab.Records[i].Values[j])
			}
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	labels := Labels{3: true, 1: false, 10: true}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip size %d", len(back))
	}
	for id, v := range labels {
		if back[id] != v {
			t.Errorf("label %d = %v, want %v", id, back[id], v)
		}
	}
}

func TestReadLabelsFormats(t *testing.T) {
	in := "pair_id,label\n0,match\n1,unmatch\n2,true\n3,false\n4,1\n5,0\n6,yes\n7,n\n"
	labels, err := ReadLabels(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 1: false, 2: true, 3: false, 4: true, 5: false, 6: true, 7: false}
	for id, v := range want {
		if labels[id] != v {
			t.Errorf("label %d = %v, want %v", id, labels[id], v)
		}
	}
}

func TestReadLabelsErrors(t *testing.T) {
	cases := []string{
		"pair_id,label\nxyz,match\n",
		"pair_id,label\n1,maybe\n",
		"justone\n1,match\n",
	}
	for _, in := range cases {
		if _, err := ReadLabels(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q should fail", in)
		}
	}
	// Empty file = no labels, not an error.
	labels, err := ReadLabels(strings.NewReader(""))
	if err != nil || len(labels) != 0 {
		t.Errorf("empty labels: %v %v", labels, err)
	}
}

func TestWritePending(t *testing.T) {
	ta := &records.Table{Name: "a", Attributes: []string{"name"},
		Records: []records.Record{{ID: 0, Values: []string{"alpha"}}, {ID: 1, Values: []string{"beta"}}}}
	tb := &records.Table{Name: "b", Attributes: []string{"name"},
		Records: []records.Record{{ID: 0, Values: []string{"alfa"}}}}
	cands := []blocking.Pair{{A: 0, B: 0, Sim: 0.9}, {A: 1, B: 0, Sim: 0.1}}
	var buf bytes.Buffer
	if err := WritePending(&buf, []int{0, 1}, cands, ta, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pair_id,similarity,a_name,b_name", "0,0.9000,alpha,alfa", "1,0.1000,beta,alfa"} {
		if !strings.Contains(out, want) {
			t.Errorf("pending output missing %q:\n%s", want, out)
		}
	}
	if err := WritePending(&buf, []int{5}, cands, ta, tb); !errors.Is(err, ErrBadFormat) {
		t.Error("out-of-range pending id should fail")
	}
}

func TestWriteResults(t *testing.T) {
	rows := []ResultRow{
		{PairID: 0, A: 1, B: 2, Sim: 0.75, Match: true, Source: "human"},
		{PairID: 1, A: 3, B: 4, Sim: 0.05, Match: false, Source: "machine"},
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"pair_id,record_a,record_b,similarity,label,source",
		"0,1,2,0.7500,match,human",
		"1,3,4,0.0500,unmatch,machine",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("results output missing %q:\n%s", want, out)
		}
	}
}

func TestPairsRoundTrip(t *testing.T) {
	pairs := []core.Pair{{ID: 3, Sim: 0.125}, {ID: 0, Sim: 0.987654321}, {ID: 7, Sim: 1}}
	var buf bytes.Buffer
	if err := WritePairs(&buf, pairs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("read %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Errorf("pair %d = %+v, want %+v (similarities must survive bit-exactly)", i, got[i], pairs[i])
		}
	}
}

func TestReadPairsErrors(t *testing.T) {
	cases := []string{
		"",                              // no header
		"pair_id\n1\n",                  // header too narrow
		"1,0.5\n2,0.7\n",                // headerless: must not eat the first pair
		"pair_id,similarity\nx,0.5\n",   // bad id
		"pair_id,similarity\n1,maybe\n", // bad similarity
		"pair_id,similarity\n1\n",       // short row
	}
	for _, c := range cases {
		if _, err := ReadPairs(strings.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err %v, want ErrBadFormat", c, err)
		}
	}
}

func TestCandidatesRoundTrip(t *testing.T) {
	cands := []blocking.Pair{
		{A: 0, B: 4, Sim: 0.123456789012345},
		{A: 2, B: 1, Sim: 1.0 / 3.0},
		{A: 7, B: 7, Sim: 1},
	}
	var buf bytes.Buffer
	if err := WriteCandidates(&buf, cands); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCandidates(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cands) {
		t.Fatalf("%d candidates, want %d", len(got), len(cands))
	}
	for i := range got {
		if got[i] != cands[i] {
			t.Errorf("candidate %d = %+v, want %+v (similarity must round-trip bit-exactly)", i, got[i], cands[i])
		}
	}
}

func TestReadCandidatesErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":        "a,b,c,d\n0,0,0,0.5\n",
		"non-positional id": "pair_id,record_a,record_b,similarity\n1,0,0,0.5\n",
		"negative record":   "pair_id,record_a,record_b,similarity\n0,-1,0,0.5\n",
		"bad similarity":    "pair_id,record_a,record_b,similarity\n0,0,0,huh\n",
		"short row":         "pair_id,record_a,record_b,similarity\n0,0\n",
	}
	for name, data := range cases {
		if _, err := ReadCandidates(strings.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

func TestScoredLabelsRoundTrip(t *testing.T) {
	labels := ScoredLabels{
		3:  {Match: true, Score: 1.25},
		1:  {Match: false, Score: -0.5},
		10: {Match: true, Score: 0.0001220703125}, // exact binary fraction round-trips
	}
	var buf bytes.Buffer
	if err := WriteScoredLabels(&buf, labels, "fp-abc"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# fingerprint: fp-abc\n") {
		t.Fatalf("missing embedded fingerprint guard:\n%s", buf.String())
	}
	back, fp, err := ReadScoredLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fp != "fp-abc" {
		t.Fatalf("fingerprint %q, want fp-abc", fp)
	}
	if len(back) != len(labels) {
		t.Fatalf("round trip size %d, want %d", len(back), len(labels))
	}
	for id, l := range labels {
		if back[id] != l {
			t.Errorf("label %d = %+v, want %+v", id, back[id], l)
		}
	}

	// Unguarded files read back with an empty fingerprint, not an error.
	buf.Reset()
	if err := WriteScoredLabels(&buf, labels, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Fatalf("unguarded write emitted a comment:\n%s", buf.String())
	}
	if _, fp, err = ReadScoredLabels(&buf); err != nil || fp != "" {
		t.Fatalf("unguarded read: fp=%q err=%v", fp, err)
	}
}

func TestReadScoredLabelsErrors(t *testing.T) {
	cases := []string{
		"pair_id,label\n1,match\n",                    // missing score column
		"pair_id,label,score\nxyz,match,1\n",          // bad id
		"pair_id,label,score\n1,maybe,1\n",            // bad label
		"pair_id,label,score\n1,match,NaN\n",          // non-finite score
		"pair_id,label,score\n1,match,+Inf\n",         // non-finite score
		"pair_id,label,score\n1,match,x\n",            // unparsable score
		"pair_id,label,score\n1,match,1\n1,match,2\n", // duplicate id
	}
	for _, in := range cases {
		if _, _, err := ReadScoredLabels(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q should fail with ErrBadFormat, got %v", in, err)
		}
	}
}
