package actl_test

import (
	"math/rand"
	"testing"

	"humo/internal/actl"
	"humo/internal/core"
	"humo/internal/datagen"
	"humo/internal/metrics"
	"humo/internal/oracle"
)

func buildWorkload(t *testing.T, tau float64, n int, seed int64) (*core.Workload, *oracle.Simulated, []bool) {
	t.Helper()
	labeled, err := datagen.Logistic(datagen.LogisticConfig{N: n, Tau: tau, Sigma: 0, SubsetSize: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pairs, truth := datagen.Split(labeled)
	w, err := core.NewWorkload(pairs, 100)
	if err != nil {
		t.Fatal(err)
	}
	return w, oracle.NewSimulated(truth), datagen.TruthSlice(labeled)
}

func TestSearchValidation(t *testing.T) {
	w, o, _ := buildWorkload(t, 14, 2000, 1)
	if _, err := actl.Search(w, 0, o, actl.Config{Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := actl.Search(w, 1.5, o, actl.Config{Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("alpha>1 should fail")
	}
	if _, err := actl.Search(w, 0.9, o, actl.Config{}); err == nil {
		t.Error("missing Rand should fail")
	}
	if _, err := actl.Search(w, 0.9, o, actl.Config{Rand: rand.New(rand.NewSource(1)), Theta: 2}); err == nil {
		t.Error("bad theta should fail")
	}
	if _, err := actl.Search(w, 0.9, o, actl.Config{Rand: rand.New(rand.NewSource(1)), SampleSize: -1}); err == nil {
		t.Error("negative sample size should fail")
	}
	if _, err := actl.Search(w, 0.9, o, actl.Config{Rand: rand.New(rand.NewSource(1)), Strategy: actl.Strategy(9)}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestSearchMeetsPrecision(t *testing.T) {
	for _, strat := range []actl.Strategy{actl.StrategyBinary, actl.StrategyScan} {
		w, o, truth := buildWorkload(t, 14, 30000, 2)
		res, err := actl.Search(w, 0.9, o, actl.Config{
			Strategy:   strat,
			SampleSize: 60,
			Rand:       rand.New(rand.NewSource(3)),
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		q, err := metrics.Evaluate(res.Labels(w), truth)
		if err != nil {
			t.Fatal(err)
		}
		// The Wilson lower bound at theta=0.9 makes large precision misses
		// unlikely; allow slack for a single run.
		if q.Precision < 0.85 {
			t.Errorf("%v: precision %.3f well below target 0.9", strat, q.Precision)
		}
		if q.Recall <= 0 {
			t.Errorf("%v: classifier found no matches", strat)
		}
		if res.ManualCost == 0 || res.ManualCost > w.Len()/2 {
			t.Errorf("%v: implausible manual cost %d", strat, res.ManualCost)
		}
	}
}

func TestRecallDropsWithPrecisionTarget(t *testing.T) {
	// The defining ACTL behaviour the paper exploits (Tables V–VI): pushing
	// the precision target up costs recall.
	w, o, truth := buildWorkload(t, 8, 30000, 4)
	var prevRecall float64 = 1.1
	for _, alpha := range []float64{0.75, 0.9, 0.99} {
		res, err := actl.Search(w, alpha, o, actl.Config{SampleSize: 80, Rand: rand.New(rand.NewSource(5))})
		if err != nil {
			t.Fatal(err)
		}
		q, err := metrics.Evaluate(res.Labels(w), truth)
		if err != nil {
			t.Fatal(err)
		}
		if q.Recall > prevRecall+0.05 {
			t.Errorf("recall %.3f at alpha=%v should not exceed recall at lower target (%.3f)", q.Recall, alpha, prevRecall)
		}
		prevRecall = q.Recall
	}
}

func TestUnreachablePrecisionYieldsEmptyRegion(t *testing.T) {
	// A workload whose top pairs are only ~50% matches cannot reach
	// precision 0.999: the search must retreat to an (almost) empty region.
	labeled := make([]datagen.LabeledPair, 2000)
	rng := rand.New(rand.NewSource(6))
	for i := range labeled {
		labeled[i] = datagen.LabeledPair{ID: i, Sim: float64(i) / 2000, Match: rng.Float64() < 0.5}
	}
	pairs, truth := datagen.Split(labeled)
	w, err := core.NewWorkload(pairs, 100)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.NewSimulated(truth)
	res, err := actl.Search(w, 0.999, o, actl.Config{SampleSize: 50, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutSubset < w.Subsets()-2 {
		t.Errorf("cut subset %d of %d: unreachable precision should push the cut to the top", res.CutSubset, w.Subsets())
	}
}

func TestLabelsShape(t *testing.T) {
	w, _, _ := buildWorkload(t, 14, 1000, 8)
	res := actl.Result{CutSubset: w.Subsets()} // empty region
	labels := res.Labels(w)
	for i, l := range labels {
		if l {
			t.Fatalf("empty region labeled pair %d as match", i)
		}
	}
	res = actl.Result{CutSubset: 0} // everything matches
	labels = res.Labels(w)
	for i, l := range labels {
		if !l {
			t.Fatalf("full region left pair %d unmatched", i)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if actl.StrategyBinary.String() != "binary" || actl.StrategyScan.String() != "scan" {
		t.Error("strategy names wrong")
	}
	if actl.Strategy(9).String() == "" {
		t.Error("unknown strategy should still format")
	}
}
