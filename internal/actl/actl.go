// Package actl implements the active-learning comparison baseline of the
// paper's §VIII-C: a precision-constrained, recall-maximizing threshold
// classifier in the style of Arasu et al. (SIGMOD 2010) and Bellare et al.
// (KDD 2012). Given a target precision alpha, it finds the lowest similarity
// threshold whose induced match region still meets alpha, estimating
// precision from human-labeled samples. Unlike HUMO it can enforce only
// precision — recall degrades as the target rises — and its manual cost is
// the number of sampled labels.
package actl

import (
	"errors"
	"fmt"
	"math/rand"

	"humo/internal/core"
	"humo/internal/stats"
)

// ErrBadConfig reports an invalid baseline configuration.
var ErrBadConfig = errors.New("actl: invalid configuration")

// Strategy selects the threshold-search procedure.
type Strategy int

const (
	// StrategyBinary performs a monotone binary search over thresholds
	// (Arasu-style: each probe tests feasibility of a candidate precision
	// constraint).
	StrategyBinary Strategy = iota
	// StrategyScan descends from the highest threshold until the sampled
	// precision lower bound first falls below the target (Bellare-style
	// iterative refinement).
	StrategyScan
)

func (s Strategy) String() string {
	switch s {
	case StrategyBinary:
		return "binary"
	case StrategyScan:
		return "scan"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterizes the search.
type Config struct {
	// Strategy selects binary search (default) or descending scan.
	Strategy Strategy
	// SampleSize is the number of pairs labeled per probed threshold.
	// 0 selects 50.
	SampleSize int
	// Theta is the confidence of the per-probe precision lower bound.
	// 0 selects 0.9.
	Theta float64
	// Steps bounds the number of probes for StrategyScan (the scan step is
	// the workload subset). 0 selects the number of subsets.
	Steps int
	// Rand drives sampling; required.
	Rand *rand.Rand
}

func (c Config) normalized() (Config, error) {
	if c.SampleSize == 0 {
		c.SampleSize = 50
	}
	if c.Theta == 0 {
		c.Theta = 0.9
	}
	if c.SampleSize < 0 || c.Steps < 0 {
		return c, fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	if !(c.Theta > 0 && c.Theta < 1) {
		return c, fmt.Errorf("%w: Theta=%v", ErrBadConfig, c.Theta)
	}
	if c.Rand == nil {
		return c, fmt.Errorf("%w: Rand required", ErrBadConfig)
	}
	return c, nil
}

// Result reports the selected classifier and the manual cost spent finding
// it.
type Result struct {
	// CutSubset is the first workload subset labeled match: all pairs in
	// subsets >= CutSubset are classified as matches. CutSubset == m means
	// an empty match region (the target precision was unreachable).
	CutSubset int
	// ManualCost is the number of distinct pairs labeled during the search.
	ManualCost int
	// Probes is the number of thresholds whose precision was estimated.
	Probes int
}

// Labels materializes the classifier's labeling over the workload, indexed
// by sorted pair position.
func (r Result) Labels(w *core.Workload) []bool {
	labels := make([]bool, w.Len())
	if r.CutSubset >= w.Subsets() {
		return labels
	}
	start, _ := w.SubsetRange(r.CutSubset)
	for i := start; i < w.Len(); i++ {
		labels[i] = true
	}
	return labels
}

// Search finds the lowest cut subset whose match region meets the target
// precision with the configured confidence.
func Search(w *core.Workload, alpha float64, o core.Oracle, cfg Config) (Result, error) {
	if !(alpha > 0 && alpha <= 1) {
		return Result{}, fmt.Errorf("%w: alpha=%v", ErrBadConfig, alpha)
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return Result{}, err
	}
	switch cfg.Strategy {
	case StrategyBinary:
		return binarySearch(w, alpha, o, cfg)
	case StrategyScan:
		return scanSearch(w, alpha, o, cfg)
	default:
		return Result{}, fmt.Errorf("%w: unknown strategy %v", ErrBadConfig, cfg.Strategy)
	}
}

// probe estimates whether the match region starting at subset `cut` meets
// alpha: it samples pairs uniformly from the region and tests the Wilson
// lower bound of the match proportion. Distinct labels are tallied into
// cost.
func probe(w *core.Workload, o core.Oracle, cfg Config, labeled map[int]struct{}, cut int, alpha float64) (bool, error) {
	m := w.Subsets()
	if cut >= m {
		return true, nil // empty region is vacuously precise
	}
	start, _ := w.SubsetRange(cut)
	n := w.Len() - start
	take := cfg.SampleSize
	if take > n {
		take = n
	}
	matches := 0
	for _, off := range cfg.Rand.Perm(n)[:take] {
		p := w.Pair(start + off)
		if o.Label(p.ID) {
			matches++
		}
		labeled[p.ID] = struct{}{}
	}
	lb, _, err := stats.WilsonInterval(matches, take, cfg.Theta)
	if err != nil {
		return false, err
	}
	return lb >= alpha, nil
}

func binarySearch(w *core.Workload, alpha float64, o core.Oracle, cfg Config) (Result, error) {
	labeled := make(map[int]struct{})
	m := w.Subsets()
	probes := 0
	// Invariant: feasible(hi) holds (empty region at m is vacuously
	// feasible); find the smallest feasible cut under the monotonicity of
	// precision.
	lo, hi := 0, m
	ok, err := probe(w, o, cfg, labeled, 0, alpha)
	if err != nil {
		return Result{}, err
	}
	probes++
	if ok {
		return Result{CutSubset: 0, ManualCost: len(labeled), Probes: probes}, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := probe(w, o, cfg, labeled, mid, alpha)
		if err != nil {
			return Result{}, err
		}
		probes++
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return Result{CutSubset: hi, ManualCost: len(labeled), Probes: probes}, nil
}

// scanSearch descends from the top subset, pooling a small sample from each
// subset it passes. The candidate region [cut, m) is feasible when the
// Wilson lower bound of its pooled sample reaches alpha; the scan stops once
// the pooled point estimate falls below alpha, since by monotonicity lower
// cuts only dilute precision further. Pooling lets the bound tighten as the
// region grows, which a stop-at-first-failure scan cannot do.
func scanSearch(w *core.Workload, alpha float64, o core.Oracle, cfg Config) (Result, error) {
	labeled := make(map[int]struct{})
	m := w.Subsets()
	steps := cfg.Steps
	if steps == 0 || steps > m {
		steps = m
	}
	perSubset := cfg.SampleSize / 10
	if perSubset < 4 {
		perSubset = 4
	}
	probes := 0
	best := m
	sampled, matches := 0, 0
	for cut := m - 1; cut >= 0 && probes < steps; cut-- {
		start, end := w.SubsetRange(cut)
		n := end - start
		take := perSubset
		if take > n {
			take = n
		}
		for _, off := range cfg.Rand.Perm(n)[:take] {
			p := w.Pair(start + off)
			if o.Label(p.ID) {
				matches++
			}
			labeled[p.ID] = struct{}{}
			sampled++
		}
		probes++
		lb, _, err := stats.WilsonInterval(matches, sampled, cfg.Theta)
		if err != nil {
			return Result{}, err
		}
		if lb >= alpha {
			best = cut
		}
		if float64(matches)/float64(sampled) < alpha {
			break
		}
	}
	return Result{CutSubset: best, ManualCost: len(labeled), Probes: probes}, nil
}
