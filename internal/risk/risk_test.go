package risk

import (
	"math"
	"reflect"
	"testing"
)

func twoSubsets() []Subset {
	return []Subset{
		{IDs: []int{10, 11, 12, 13}, Prior: 0.1},
		{IDs: []int{20, 21, 22, 23}, Prior: 0.5},
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BatchSize: -1},
		{PriorStrength: -2},
		{TailProb: -0.1},
		{TailProb: 0.5},
	} {
		if _, err := NewScheduler(twoSubsets(), cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := NewScheduler(nil, Config{}); err == nil {
		t.Error("empty subset list should be rejected")
	}
	if _, err := NewScheduler([]Subset{{IDs: []int{1}, Observed: 2}}, Config{}); err == nil {
		t.Error("observed beyond subset size should be rejected")
	}
	if _, err := NewScheduler([]Subset{{IDs: []int{1, 2}, Observed: 1, ObservedMatches: 2}}, Config{}); err == nil {
		t.Error("observed matches beyond observed should be rejected")
	}
}

func TestSchedulerOrdersByRisk(t *testing.T) {
	// Subset 1 sits at the decision boundary (prior 0.5), subset 0 far from
	// it: every batch must drain subset 1 first.
	s, err := NewScheduler(twoSubsets(), Config{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := s.NextBatch(0, 1, 0)
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want 4", len(batch))
	}
	for i, r := range batch {
		if r.Subset != 1 {
			t.Fatalf("request %d from subset %d, want the boundary subset 1", i, r.Subset)
		}
		if r.ID != 20+i {
			t.Fatalf("request %d is pair %d, want scheduling order %d", i, r.ID, 20+i)
		}
		s.Observe(r.Subset, false)
	}
	// Subset 1 exhausted: the next batch must fall back to subset 0.
	batch = s.NextBatch(0, 1, 0)
	if len(batch) != 4 || batch[0].Subset != 0 {
		t.Fatalf("second batch %+v, want subset 0", batch)
	}
}

func TestSchedulerWindowAndLimit(t *testing.T) {
	s, err := NewScheduler(twoSubsets(), Config{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Active window excludes the boundary subset: only subset 0 schedules.
	batch := s.NextBatch(0, 0, 2)
	if len(batch) != 2 || batch[0].Subset != 0 || batch[1].Subset != 0 {
		t.Fatalf("batch %+v, want 2 requests from subset 0", batch)
	}
	for _, r := range batch {
		s.Observe(r.Subset, true)
	}
	if got := s.Remaining(0, 0); got != 2 {
		t.Fatalf("Remaining = %d, want 2", got)
	}
	if got := s.Remaining(0, 1); got != 6 {
		t.Fatalf("Remaining over both = %d, want 6", got)
	}
	if got := s.Answered(); got != 2 {
		t.Fatalf("Answered = %d, want 2", got)
	}
	// An empty window yields no work.
	if b := s.NextBatch(1, 0, 0); len(b) != 0 {
		t.Fatalf("inverted window scheduled %+v", b)
	}
}

func TestPosteriorUpdates(t *testing.T) {
	s, err := NewScheduler([]Subset{{IDs: []int{1, 2, 3, 4}, Prior: 0.5}}, Config{PriorStrength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m := s.Mean(0); math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("prior mean %v, want 0.5", m)
	}
	// Four matches: posterior mean (2+4)/(4+4) = 0.75.
	for i := 0; i < 4; i++ {
		s.Observe(0, true)
	}
	if m := s.Mean(0); math.Abs(m-0.75) > 1e-12 {
		t.Fatalf("posterior mean %v, want 0.75", m)
	}
	st := s.Stratum(0)
	if st.Size != 4 || st.Sampled != 4 || st.Matches != 4 {
		t.Fatalf("stratum %+v", st)
	}
}

func TestObservedPrefixSeedsSchedule(t *testing.T) {
	s, err := NewScheduler([]Subset{
		{IDs: []int{1, 2, 3}, Prior: 0.5, Observed: 3, ObservedMatches: 2},
		{IDs: []int{4, 5, 6}, Prior: 0.5},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stratum(0); st.Sampled != 3 || st.Matches != 2 {
		t.Fatalf("census stratum %+v", st)
	}
	if got := s.Remaining(0, 1); got != 3 {
		t.Fatalf("Remaining = %d, want only the uncensused subset's 3", got)
	}
	for _, r := range s.NextBatch(0, 1, 0) {
		if r.Subset == 0 {
			t.Fatal("fully observed subset must never be scheduled")
		}
	}

	// Partially observed: only the unobserved suffix schedules, in order.
	s, err = NewScheduler([]Subset{
		{IDs: []int{7, 8, 9, 10}, Prior: 0.5, Observed: 2, ObservedMatches: 1},
	}, Config{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stratum(0); st.Sampled != 2 || st.Matches != 1 {
		t.Fatalf("partial stratum %+v", st)
	}
	b := s.NextBatch(0, 0, 0)
	if len(b) != 2 || b[0].ID != 9 || b[1].ID != 10 {
		t.Fatalf("batch %+v, want the unobserved suffix [9 10]", b)
	}
}

func TestTailRiskPrefersUncertainSubsets(t *testing.T) {
	// Both subsets share the posterior mean distance from 0.5, but subset 1
	// has a much weaker prior: with the CVaR-style tail enabled its larger
	// posterior spread must rank it first.
	subsets := []Subset{
		{IDs: []int{1, 2}, Prior: 0.2},
		{IDs: []int{3, 4}, Prior: 0.2},
	}
	tailed, err := NewScheduler(subsets, Config{TailProb: 0.05, PriorStrength: 2})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := NewScheduler(subsets, Config{TailProb: 0.05, PriorStrength: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tailed.PairRisk(0) <= strong.PairRisk(0) {
		t.Errorf("weak prior tail risk %v should exceed strong prior %v",
			tailed.PairRisk(0), strong.PairRisk(0))
	}
	// Without the tail, the two configurations score identically.
	a, _ := NewScheduler(subsets, Config{PriorStrength: 2})
	b, _ := NewScheduler(subsets, Config{PriorStrength: 200})
	if math.Abs(a.PairRisk(0)-b.PairRisk(0)) > 1e-12 {
		t.Errorf("expected risk must not depend on prior strength for equal means: %v vs %v", a.PairRisk(0), b.PairRisk(0))
	}
}

func TestScoresWorkerInvariance(t *testing.T) {
	subsets := make([]Subset, 64)
	for k := range subsets {
		ids := make([]int, 30)
		for i := range ids {
			ids[i] = k*100 + i
		}
		subsets[k] = Subset{IDs: ids, Prior: float64(k) / 64}
	}
	build := func(workers int) *Scheduler {
		s, err := NewScheduler(subsets, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s8 := build(1), build(8)
	for round := 0; round < 5; round++ {
		b1 := s1.NextBatch(0, 63, 0)
		b8 := s8.NextBatch(0, 63, 0)
		if !reflect.DeepEqual(b1, b8) {
			t.Fatalf("round %d: schedules diverge across worker counts:\n%v\nvs\n%v", round, b1, b8)
		}
		for _, r := range b1 {
			match := r.ID%3 == 0
			s1.Observe(r.Subset, match)
			s8.Observe(r.Subset, match)
		}
		if !reflect.DeepEqual(s1.Scores(0, 63), s8.Scores(0, 63)) {
			t.Fatalf("round %d: scores diverge across worker counts", round)
		}
	}
}

func TestScoreFloorKeepsPairsSchedulable(t *testing.T) {
	// A posterior pinned (numerically) at certainty must still schedule its
	// unanswered pairs, or the search would spin forever on them.
	s, err := NewScheduler([]Subset{{IDs: []int{1, 2}, Prior: 0}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b := s.NextBatch(0, 0, 0); len(b) != 2 {
		t.Fatalf("certain-unmatch subset not scheduled: %+v", b)
	}
}
