// Package risk implements the risk-aware human-workload scheduler of the
// r-HUMO line of follow-up work (Hou et al., arXiv:1803.05714; risk analysis
// in Chen et al., arXiv:1805.12502): instead of treating every pair of the
// human zone as equally worth asking about, pairs are ranked by *risk* — how
// much a wrong machine label on them would endanger the precision/recall
// guarantee — and human effort is spent rarest-risk-first, re-estimating the
// posteriors after every answered batch so the requirement can be certified
// (and the labeling stopped) as early as possible.
//
// The package is deliberately independent of the search machinery in
// internal/core: it models one thing, a prioritized batch schedule over a
// similarity-partitioned workload. Each unit subset carries a Beta posterior
// over its match proportion, seeded from a prior (in HUMO, the Gaussian
// process estimate of internal/core's partial-sampling fit) and updated
// online as human answers arrive. core.RiskSearch owns the quality
// requirement and drives the scheduler; internal/serve surfaces its progress.
//
// Determinism contract: for a fixed subset layout (sizes, id order, priors)
// and configuration, the schedule — the exact sequence of Requests returned
// by NextBatch interleaved with the Observe calls answering them — is
// bit-identical across runs and across Workers values. Risk scores are
// computed per subset independently (fanned out over internal/parallel) and
// reduced in ascending subset order with strict-inequality argmax, so worker
// count changes wall-clock time only, never the schedule.
package risk

import (
	"fmt"
	"math"

	"humo/internal/parallel"
	"humo/internal/stats"
)

// DefaultBatchSize is the review-batch size used when Config.BatchSize is 0:
// small enough that the re-estimation after each batch can stop the schedule
// mid-subset (the batch size bounds the labels wasted past the earliest
// certifiable stop), large enough that a human workforce is not drip-fed
// single pairs.
const DefaultBatchSize = 10

// DefaultPriorStrength is the pseudo-count weight of the subset prior when
// Config.PriorStrength is 0: the prior counts as this many already-observed
// pairs, so a handful of real answers can move the posterior but one noisy
// answer cannot swing it.
const DefaultPriorStrength = 8

// Config tunes the scheduler.
type Config struct {
	// BatchSize is the number of pairs per scheduled review batch; 0 selects
	// DefaultBatchSize. Smaller batches re-estimate more often and stop
	// earlier at the price of more scheduling rounds.
	BatchSize int
	// PriorStrength is the Beta pseudo-count mass given to each subset's
	// prior proportion; 0 selects DefaultPriorStrength.
	PriorStrength float64
	// TailProb selects the CVaR-style tail risk score: 0 scores a subset by
	// its expected per-pair mislabel probability min(p, 1-p); q in (0, 0.5)
	// scores it pessimistically, shifting the posterior mean toward the 0.5
	// decision boundary by the one-sided z-quantile of q standard
	// deviations — subsets whose *tail* plausibly sits near the boundary are
	// scheduled ahead of subsets that are merely uncertain on average.
	TailProb float64
	// Workers bounds the goroutines of the per-subset risk scoring; <= 0
	// selects GOMAXPROCS. Any value yields the bit-identical schedule.
	Workers int
}

func (c Config) normalized() (Config, error) {
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchSize < 0 {
		return c, fmt.Errorf("risk: BatchSize %d must be >= 0", c.BatchSize)
	}
	if c.PriorStrength == 0 {
		c.PriorStrength = DefaultPriorStrength
	}
	if c.PriorStrength < 0 {
		return c, fmt.Errorf("risk: PriorStrength %v must be >= 0", c.PriorStrength)
	}
	if c.TailProb < 0 || c.TailProb >= 0.5 {
		return c, fmt.Errorf("risk: TailProb %v must be in [0, 0.5)", c.TailProb)
	}
	return c, nil
}

// Subset describes one unit subset of the workload to the scheduler.
type Subset struct {
	// IDs are the subset's pair ids in scheduling order. The caller fixes
	// this order (core.RiskSearch uses a seeded shuffle): a prefix of it is
	// then a simple random sample of the subset, which is what makes the
	// partially-answered strata statistically usable.
	IDs []int
	// Prior is the prior match proportion of the subset (the GP posterior
	// mean in HUMO). It is clamped inside (0, 1) so the Beta posterior never
	// collapses to certainty on prior evidence alone.
	Prior float64
	// Observed pre-seeds answers already collected before scheduling
	// starts (HUMO's GP sampling phase): the first Observed entries of IDs
	// are taken as answered, ObservedMatches of them matching. They seed
	// the posterior and are never scheduled again; a fully observed subset
	// (Observed == len(IDs)) carries zero residual risk. The caller must
	// place the pre-answered ids at the front of IDs.
	Observed        int
	ObservedMatches int
}

// Request is one scheduled pair: which subset it came from and its id.
type Request struct {
	Subset int
	ID     int
}

// subsetState is the live posterior and progress of one subset.
type subsetState struct {
	ids     []int
	a0, b0  float64 // Beta prior pseudo-counts
	taken   int     // pairs handed out by NextBatch (prefix of ids)
	matches int     // matching answers among the observed
	seen    int     // answers observed (== taken between batches)
}

// Scheduler maintains per-subset match-proportion posteriors and hands out
// the human workload rarest-risk-first. It is not safe for concurrent use:
// the schedule is a strict alternation of NextBatch and the Observe calls
// answering it, owned by one search loop.
type Scheduler struct {
	cfg     Config
	tailZ   float64 // one-sided z for TailProb; 0 for expected risk
	subsets []subsetState
	scores  []float64 // scratch reused by scoring rounds
}

// NewScheduler builds a scheduler over the given subsets.
func NewScheduler(subsets []Subset, cfg Config) (*Scheduler, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(subsets) == 0 {
		return nil, fmt.Errorf("risk: no subsets")
	}
	s := &Scheduler{
		cfg:     cfg,
		subsets: make([]subsetState, len(subsets)),
		scores:  make([]float64, len(subsets)),
	}
	if cfg.TailProb > 0 {
		// One-sided quantile: P(Z > z) = q  <=>  P(|Z| <= z) = 1 - 2q.
		z, err := stats.TwoSidedZ(1 - 2*cfg.TailProb)
		if err != nil {
			return nil, err
		}
		s.tailZ = z
	}
	for k, sub := range subsets {
		p := sub.Prior
		if p < 1e-6 {
			p = 1e-6
		}
		if p > 1-1e-6 {
			p = 1 - 1e-6
		}
		st := subsetState{
			ids: sub.IDs,
			a0:  p * cfg.PriorStrength,
			b0:  (1 - p) * cfg.PriorStrength,
		}
		if sub.Observed < 0 || sub.Observed > len(sub.IDs) {
			return nil, fmt.Errorf("risk: subset %d observed %d out of [0,%d]", k, sub.Observed, len(sub.IDs))
		}
		if sub.ObservedMatches < 0 || sub.ObservedMatches > sub.Observed {
			return nil, fmt.Errorf("risk: subset %d observed matches %d out of [0,%d]", k, sub.ObservedMatches, sub.Observed)
		}
		st.taken = sub.Observed
		st.seen = sub.Observed
		st.matches = sub.ObservedMatches
		s.subsets[k] = st
	}
	return s, nil
}

// Subsets returns the number of subsets under schedule.
func (s *Scheduler) Subsets() int { return len(s.subsets) }

// posterior returns the Beta posterior mean and standard deviation of subset
// k's match proportion.
func (s *Scheduler) posterior(k int) (mean, sd float64) {
	st := &s.subsets[k]
	a := st.a0 + float64(st.matches)
	b := st.b0 + float64(st.seen-st.matches)
	n := a + b
	mean = a / n
	sd = math.Sqrt(a * b / (n * n * (n + 1)))
	return mean, sd
}

// Mean returns the current posterior mean match proportion of subset k.
func (s *Scheduler) Mean(k int) float64 {
	m, _ := s.posterior(k)
	return m
}

// PairRisk returns the risk density of subset k: the (tail-adjusted)
// probability that a machine label on one of its pairs would be wrong. Every
// unanswered pair of the subset carries this per-pair risk; the subset's
// schedule priority is the density times its unanswered pair count.
func (s *Scheduler) PairRisk(k int) float64 {
	mean, sd := s.posterior(k)
	if s.tailZ > 0 {
		// Shift the proportion toward the 0.5 decision boundary by the tail
		// quantile, never across it: the pessimistic-in-the-tail mislabel
		// probability, capped at the maximal 0.5.
		if mean < 0.5 {
			mean = math.Min(0.5, mean+s.tailZ*sd)
		} else {
			mean = math.Max(0.5, mean-s.tailZ*sd)
		}
	}
	r := math.Min(mean, 1-mean)
	// Floor: an unanswered pair must always remain schedulable, even when
	// the posterior is (numerically) certain.
	if r < 1e-9 {
		r = 1e-9
	}
	return r
}

// score returns subset k's schedule priority inside the active window:
// per-pair risk times unanswered pairs, 0 when fully scheduled.
func (s *Scheduler) score(k int) float64 {
	u := len(s.subsets[k].ids) - s.subsets[k].taken
	if u <= 0 {
		return 0
	}
	return float64(u) * s.PairRisk(k)
}

// Scores fills the per-subset priorities for the active window [lo, hi]
// (inclusive; subsets outside score 0) and returns them. The slice is reused
// across calls. Scoring fans out over Config.Workers; each entry depends
// only on its own subset, so the result is identical at any worker count.
func (s *Scheduler) Scores(lo, hi int) []float64 {
	for k := range s.scores {
		s.scores[k] = 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.subsets) {
		hi = len(s.subsets) - 1
	}
	if lo > hi {
		return s.scores
	}
	n := hi - lo + 1
	// fn never fails, so ForEach cannot return an error.
	_ = parallel.ForEach(s.cfg.Workers, n, func(i int) error {
		s.scores[lo+i] = s.score(lo + i)
		return nil
	})
	return s.scores
}

// NextBatch schedules the next review batch inside the active window
// [lo, hi]: up to min(BatchSize, limit) pairs (limit <= 0 means no extra
// cap), drawn from the highest-priority subsets, ties broken toward the
// lower subset index. Scheduled pairs are considered handed out; the caller
// must Observe an answer for every returned Request before scheduling again.
// An empty batch means the window holds no unanswered pairs.
func (s *Scheduler) NextBatch(lo, hi, limit int) []Request {
	size := s.cfg.BatchSize
	if limit > 0 && limit < size {
		size = limit
	}
	// One full scoring pass per batch; draining a subset only changes its
	// own score, which is updated in place between picks.
	scores := s.Scores(lo, hi)
	var out []Request
	for len(out) < size {
		best, bestScore := -1, 0.0
		for k := lo; k <= hi && k < len(s.subsets); k++ {
			if k < 0 {
				continue
			}
			if scores[k] > bestScore {
				best, bestScore = k, scores[k]
			}
		}
		if best < 0 {
			break
		}
		st := &s.subsets[best]
		for len(out) < size && st.taken < len(st.ids) {
			out = append(out, Request{Subset: best, ID: st.ids[st.taken]})
			st.taken++
		}
		scores[best] = s.score(best)
	}
	return out
}

// Observe feeds one human answer for a pair of subset k back into its
// posterior. Answers must arrive in the order their Requests were scheduled.
func (s *Scheduler) Observe(k int, match bool) {
	st := &s.subsets[k]
	st.seen++
	if match {
		st.matches++
	}
}

// Stratum exports subset k's observed answers as a stats.Stratum: the
// answered prefix of the (caller-shuffled) id order is a simple random
// sample of the subset, so stratified estimators apply directly.
func (s *Scheduler) Stratum(k int) stats.Stratum {
	st := &s.subsets[k]
	return stats.Stratum{Size: len(st.ids), Sampled: st.seen, Matches: st.matches}
}

// Remaining returns the number of unanswered pairs in subsets [lo, hi].
func (s *Scheduler) Remaining(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.subsets) {
		hi = len(s.subsets) - 1
	}
	total := 0
	for k := lo; k <= hi; k++ {
		total += len(s.subsets[k].ids) - s.subsets[k].seen
	}
	return total
}

// Answered returns the total number of answers observed so far.
func (s *Scheduler) Answered() int {
	total := 0
	for k := range s.subsets {
		total += s.subsets[k].seen
	}
	return total
}
