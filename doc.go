// Package humo implements HUMO, the HUman-and-Machine-cOoperation framework
// for entity resolution with quality guarantees of Chen et al. (ICDE 2018,
// "Enabling Quality Control for Entity Resolution").
//
// # The problem
//
// Given an ER workload — instance pairs scored by a machine metric such as
// aggregated attribute similarity — HUMO enforces user-specified precision
// and recall levels (with a confidence level) by splitting the workload into
// three zones: low-metric pairs machine-labeled unmatch (D-), high-metric
// pairs machine-labeled match (D+), and a middle zone DH whose pairs are
// verified by a human. The optimization problem is minimizing |DH| subject
// to the quality requirement.
//
// # The optimizers
//
// Three searches locate DH's boundaries, trading assumptions for human cost:
//
//   - Base: justified purely by the monotonicity assumption of precision
//     (higher similarity => higher match probability). Meets any requirement
//     with certainty when monotonicity holds, at conservative cost.
//   - AllSampling: samples every unit subset and bounds the match counts of
//     D- and D+ with stratified random-sampling margins (Student-t).
//   - PartialSampling: samples a few subsets, interpolates the
//     match-proportion function with Gaussian-process regression, and bounds
//     region totals from the posterior — usually the cheapest sampling
//     approach.
//   - Hybrid: starts from the partial-sampling solution and re-tightens the
//     boundaries using the better of the monotonicity-based and the
//     sampling-based estimates at every step.
//
// # Risk-aware resolution (r-HUMO)
//
// RiskAware (Method "risk") implements the r-HUMO refinement of the
// follow-up work (Hou et al. 2018): after the partial-sampling fit, the
// human zone is not labeled wholesale but scheduled rarest-risk-first — a
// pair's risk is the (optionally tail-weighted, RiskScheduleConfig.TailProb)
// posterior probability that its machine label would be wrong, exactly the
// pairs whose mislabeling endangers the precision/recall guarantee. After
// every answered batch the per-subset Beta posteriors are re-estimated and
// the certified division recomputed from the combined evidence (stratified
// counts where humans have answered, the Gaussian process elsewhere, hulled
// with the monotonicity envelope of the observed rates); the schedule stops
// the moment the requirement is provably met. RiskConfig.BudgetPairs makes
// the search anytime: the schedule stops at the label budget and settles
// for the currently certified division, which still carries the guarantee
// once its DH is human-labeled. Session surfaces the schedule's state via
// RiskProgress, and humod serves it in the session status.
//
// Risk determinism contract: for a fixed workload, requirement and
// configuration, the same seed plus the same answers yield the same
// schedule — every batch's pair ids in order, and therefore the same
// Solution and human cost — across runs and across ALL worker counts
// (RiskScheduleConfig.Workers and SamplingConfig.Workers trade wall-clock
// time only; risk scores are reduced in ascending subset index order).
// Checkpoint/RestoreSession therefore replay risk sessions bit-identically,
// like every other method.
//
// # Risk-corrected machine labels (c-HUMO)
//
// Correct (Method "correct") inverts the regime of the searches above:
// instead of finding a human zone inside an unlabeled workload, it starts
// from a complete machine labeling — any Classifier implementation; SVM,
// Fellegi and LabelMapClassifier adapt the built-in models and pre-scored
// files, ClassifyAll fans a classifier over the workload deterministically —
// and spends the human budget verifying the labels most likely to be wrong
// (Chen et al. 2018, arXiv:1805.12502). The scored labels are stratified by
// classifier confidence, a Beta posterior over the classifier's error rate
// is maintained per stratum, and verification proceeds riskiest-first in
// batches until the corrected label set provably meets the
// precision/recall requirement — or CorrectConfig.BudgetPairs stops it
// early with the bounds certified so far. Verified pairs carry their human
// answer; everything else keeps its (possibly corrected-by-posterior)
// machine label. Session surfaces the live certificate via
// CorrectProgress, and humod serves it in the session status.
//
// The risk determinism contract holds unchanged: same labels + same seed +
// same answers yield the same verification schedule at any worker count,
// and Checkpoint/RestoreSession replay correct sessions bit-identically —
// the checkpoint fingerprints the machine label set, so a restore against
// a retrained classifier is refused rather than silently mixed.
//
// # Quick example
//
//	pairs := []humo.Pair{ /* id + machine metric per instance pair */ }
//	w, err := humo.NewWorkload(pairs, 0) // 0 = default subset size (200)
//	if err != nil { ... }
//	oracle := humo.NewSimulatedOracle(groundTruth) // or your own Oracle
//	req := humo.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
//	sol, err := humo.Hybrid(w, req, oracle, humo.HybridConfig{
//		Sampling: humo.SamplingConfig{Rand: rand.New(rand.NewSource(1))},
//	})
//	if err != nil { ... }
//	labels := sol.Resolve(w, oracle) // final labeling; DH goes to the human
//
// The Oracle interface is the human: any implementation that answers
// match/unmatch per pair id works — a simulated ground truth, a review UI,
// or a crowdsourcing connector. Human cost is the number of distinct pairs
// the oracle is asked about (OracleCost reads it back). Oracles that also
// implement BatchOracle receive whole review batches — a unit subset, a
// per-subset sample — in one call instead of a pair-by-pair trickle.
//
// # Sessions and the Labeler contract
//
// The one-shot searches block inside Oracle.Label, which real human
// backends cannot serve: they answer in batches, asynchronously, and
// fallibly. Session runs any of the five searches as a pausable state
// machine instead:
//
//	s, err := humo.NewSession(w, req, humo.SessionConfig{Method: humo.MethodHybrid, Seed: 1})
//	for {
//		batch, err := s.Next(ctx) // coalesced, deduplicated pair ids
//		if err != nil { ... }
//		if batch.Empty() { break }
//		s.Answer(labels)          // partial answers allowed
//	}
//	sol, cost := s.Solution(), s.Cost()
//
// The search runs on an internal goroutine against a channel-backed oracle,
// so the core algorithms are unchanged — and a session driven to completion
// produces the bit-identical Solution and human cost as the one-shot call
// with the same seed. Sessions are cancellable (Cancel), resumable across
// process restarts (Checkpoint/RestoreSession replay the answered-label log
// deterministically), and optionally carry the search through the final DH
// labeling (SessionConfig.Resolve, Session.Labels).
//
// Backends implement the error-aware contract
//
//	type Labeler interface {
//		LabelBatch(ctx context.Context, ids []int) (map[int]bool, error)
//	}
//
// and drive a session with Session.Run, which propagates backend failures
// and ctx cancellation as errors — states the legacy Oracle cannot
// represent. OracleLabeler and NewOracleFromLabeler adapt between the two
// contracts in either direction.
//
// # Crowd-scale labeling
//
// CrowdLabeler (internal/crowd) is a Labeler that models a real
// crowdsourcing workforce after CrowdER's cost model (Wang et al., VLDB
// 2012) instead of a perfect per-pair reviewer. A surfaced batch is first
// answered from the transitive closure of earlier answers (a~b plus b~c
// answers a~c for free, and a~b plus a confirmed non-match b!~c answers
// a!~c); the remainder is packed into cluster-based HITs of at most K
// distinct records, so pairs sharing records ride on one task page; each
// packed pair is voted on by several simulated noisy workers, aggregated
// under per-worker Beta accuracy posteriors, and escalated — one extra vote
// at a time — while the posterior confidence sits below the configured
// floor. Conflicts between a direct answer and the closure's inference are
// counted and resolved in favor of the direct answer. ERDataset.CrowdRefs
// exposes the record identities behind generated workloads; humod accepts a
// "crowd" session spec that drives a server-side session through the same
// pipeline, and "humoexp crowdcost" measures the HITs and votes the
// pipeline saves against a flat per-pair batcher at equal quality.
//
// Crowd determinism contract: for a fixed configuration (seed, pool size,
// worker error range, packing and vote knobs) and a fixed sequence of label
// batches, the HITs built, the votes cast, the inferred labels and every
// CrowdStats counter are bit-identical across runs and across all worker
// counts (CrowdLabelerConfig.Workers trades wall-clock time only). The same
// holds for CrowdOracle: its base seed is drawn once at construction and
// each pair's votes come from a private stream seeded by (base seed, pair
// id), so a pair's adjudicated answer is identical whether pairs are labeled
// one by one, in one batch, split across batches, or in any request order.
//
// # The humod server
//
// One session is one resolution; a deployment runs many at once, each with
// its own human workforce answering asynchronously. internal/serve provides
// that serving layer and cmd/humod exposes it over an HTTP JSON API:
//
//	POST   /v1/sessions                  create (inline pairs or workload_file)
//	GET    /v1/sessions                  list
//	GET    /v1/sessions/{id}             status / solution / cost
//	GET    /v1/sessions/{id}/next        long-poll the pending batch
//	POST   /v1/sessions/{id}/answers     submit (partial) answers
//	GET    /v1/sessions/{id}/labels      long-poll the answered-label log
//	DELETE /v1/sessions/{id}             cancel and forget
//	POST   /v1/workloads                 build a workload from uploaded tables
//	POST   /v1/workloads/{name}/records  append records to a live workload
//	GET    /metrics                      counters + latency histograms
//
// The serve.Manager owns the sessions (create/get/list/delete, bounded by
// a configurable cap, partitioned by id hash across independent shard lock
// domains) and journals: every answers call is applied to the session and
// fsynced as one delta line appended to the session's journal — on top of
// a base checkpoint rewritten atomically every CompactEvery deltas —
// before it is acknowledged. The recovery guarantee follows from
// Checkpoint/RestoreSession's replay semantics plus the journal replay
// rules (internal/serve): a humod killed at ANY point — between two
// batches, mid-batch, mid-append (a torn journal line is dropped and
// truncated away), mid-compaction — restarts on the same state directory
// with every live session restored, and each resolution completes with the
// bit-identical Solution and human cost of a run that was never
// interrupted. The cmd/humod e2e tests kill a server mid-resolution and
// assert exactly that.
//
// HTTPLabeler closes the loop from the client side: it implements Labeler
// against the labels endpoint, so a local Session.Run can label through a
// remote humod's workforce. Create the remote session as the deterministic
// twin of the local one (same workload, method, knobs and seed): the pairs
// the local search asks for are then exactly the pairs the remote session
// surfaces to its workforce, and both runs land on the same division.
//
// # Generating workloads: GenerateWorkload
//
// Everything above consumes a Workload of pre-scored pairs; GenerateWorkload
// is the high-throughput front end that produces one from two record
// tables:
//
//	g, err := humo.GenerateWorkload(ctx, tableA, tableB, humo.GenConfig{
//		Specs: []humo.AttributeSpec{
//			{Attribute: "name", Kind: humo.KindJaccard},
//			{Attribute: "description", Kind: humo.KindCosine},
//		},
//		Block:     humo.BlockToken, // size- and prefix-filtered inverted index
//		MinShared: 2,
//		Threshold: 0.3,
//		Workers:   0, // all cores
//	})
//	// g.Workload is ready to resolve; g.Candidates[i] holds the record
//	// pair behind workload pair id i; g.Fingerprint pins the output.
//
// The engine (internal/blocking) preprocesses every record exactly once —
// tokens interned into a shared int-id dictionary, sorted token-id sets for
// linear-merge Jaccard, term-frequency vectors with precomputed norms for
// cosine, decoded rune slices and reusable DP buffers for the edit-distance
// measures — so the per-pair hot path neither tokenizes nor allocates.
// BlockToken replaces the quadratic scan with an inverted-index join: with
// a minimum shared-token count k, records with fewer than k tokens are
// dropped outright (size filter), and only each record's df-rarest
// len-k+1 tokens are indexed and probed (prefix filter); surviving
// candidates are verified by merging the full sorted token lists before
// scoring. Scoring fans out over internal/parallel in contiguous record
// shards merged in order.
//
// BlockLSH is the million-record path. The inverted index is exact but its
// cost sums count_A(t)*count_B(t) over tokens — skewed vocabularies make
// hot postings quadratic. BlockLSH keys each record, per band, on its Rows
// smallest token hashes under the band's seeded 64-bit function (bottom-Rows
// MinHash), so a band collision requires the Rows smallest hashes of the
// pair's union to all be shared tokens: probability ~ jaccard^Rows per
// band, 1-(1-s^Rows)^Bands over Bands bands, and pairs sharing fewer than
// Rows tokens never collide at all. Colliding pairs are verified against
// the full sorted token lists — candidates always share at least
// max(MinShared, Rows) tokens — before the same sharded scoring. Hash
// seeds are fixed constants, so LSH output is as deterministic as the
// exact modes; recall against BlockToken at the same threshold is measured
// and pinned by test (>= 0.95 on the seeded short-attribute fixture, 1.0
// on the long-title benchmark fixture).
//
// Determinism contract: for fixed tables and GenConfig, GenerateWorkload
// returns the same candidate pairs with bit-identical similarities — and
// therefore the same workload fingerprint — at any Workers value; the
// worker count changes wall-clock time, never output. This holds for every
// blocking mode including BlockLSH (fixed hash seeds, order-stable merges).
// Distinct Generate calls may also share one Scorer concurrently: the
// scorer is read-only after construction, pinned by a -race test. All-zero
// spec weights select the paper's distinct-value weighting rule (§VIII-A).
// The equivalence tests in internal/blocking hold the whole rebuilt path
// bit-identical to the straightforward map-based reference implementation.
//
// GenerateWorkload is wired into the binaries three ways: cmd/humogen
// (generate mode: -a/-b/-spec/-block/-workers, writing the workload CSV
// with its fingerprint embedded as a leading comment line — one atomic
// artifact — and optionally the full candidates CSV), cmd/humod
// (POST /v1/workloads builds a workload server-side from uploaded tables
// and persists it under -data for sessions to reference by file name), and
// cmd/humo (in-process generation, or -candidates to consume a humogen
// candidates file directly).
//
// # Streaming: live tables, workload deltas, session extension
//
// Production tables are not static. The incremental path keeps a
// resolution live while records arrive:
//
//   - Table.Append grows a record table in versioned snapshots (ids
//     continue the existing numbering; earlier snapshots stay valid).
//   - IncrementalWorkload retains the blocking state a from-scratch
//     generation would rebuild — the inverted token index for BlockToken,
//     the band tables for BlockLSH — and Sync emits only the delta:
//     candidates pairing a new record with an old one or two new records
//     with each other. The union of the initial pairs and every Sync delta
//     is bit-identical (same pair set, same similarity bits, any worker
//     count) to generating from scratch over the final tables, and delta
//     pair ids continue the cumulative numbering, so each epoch's pair
//     list is a strict prefix of the next.
//   - Session.Extend absorbs a candidate delta into a running session
//     without restarting it, re-certifying only the strata the new pairs
//     touch. Extending a canceled or terminated session returns
//     ErrSessionDone with the answered-label log intact; extending with
//     zero new candidates is a no-op.
//
// Identity under appends is a monotone fingerprint chain, not a single
// hash: element e of IncrementalWorkload.Chain is the workload fingerprint
// after append epoch e, Extend appends to the session's copy of the chain,
// and Checkpoint records it. RestoreSession accepts a checkpoint whose
// workload hash appears anywhere in the current chain — the session
// restores at that epoch and absorbs the missing suffix through Extend —
// and refuses (ErrCheckpointMismatch) one that appears nowhere, so answers
// can never silently reattach to a different candidate set. humod wires
// this through POST /v1/workloads/{name}/records (appends are journaled
// before they are applied and replayed one Sync epoch per journal line on
// restart) and cmd/humo's -append mode.
//
// Package-level generators (Logistic, DSLike, ABLike) reproduce the paper's
// evaluation workloads for benchmarking; cmd/humoexp regenerates every table
// and figure of the paper's evaluation section.
//
// # Module setup
//
// The repository is the single Go module "humo" (see go.mod); a fresh clone
// builds and tests with the standard toolchain and no third-party
// dependencies:
//
//	go build ./... && go test ./...
//
// # Parallelism
//
// The experiment harness and the hot estimation paths fan out on bounded
// worker pools (internal/parallel). Every concurrency knob uses the same
// convention — values <= 0 select GOMAXPROCS — and every parallel path is
// deterministic: repetition seeds are fixed per index and reductions happen
// in index order, so any worker count produces bit-identical results. The
// bound applies per fan-out level (concurrent experiments, repetitions
// within one, the estimator precompute), not globally — nested levels can
// briefly oversubscribe, which trades some scheduling overhead for a much
// simpler determinism story.
//
//   - cmd/humoexp -parallel N runs up to N experiments concurrently and
//     fans each experiment's stochastic repetitions out across up to N
//     workers, printing output in command-line order regardless of
//     completion order.
//   - SamplingConfig.Workers bounds the goroutines of the coherent
//     Gaussian-process variance precompute (the O(m²) part of Eq. 20).
//   - humo.Workers normalizes a knob the way the rest of the package does.
package humo
