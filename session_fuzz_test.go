package humo_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"humo"
)

// fuzzFixture builds the small fixed workload and session configuration
// every FuzzRestoreSession input is restored against.
func fuzzFixture(tb testing.TB) (*humo.Workload, humo.Requirement, humo.SessionConfig, map[int]bool) {
	tb.Helper()
	labeled, err := humo.Logistic(humo.LogisticConfig{N: 600, Tau: 14, Sigma: 0.1, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	pairs, truth := humo.Split(labeled)
	w, err := humo.NewWorkload(pairs, 100)
	if err != nil {
		tb.Fatal(err)
	}
	req := humo.Requirement{Alpha: 0.9, Beta: 0.9, Theta: 0.9}
	cfg := humo.SessionConfig{Method: humo.MethodHybrid, Seed: 5}
	return w, req, cfg, truth
}

// checkpointMirror decodes the checkpoint wire format independently of the
// package, so the fuzz target can cross-check what a successful restore
// actually loaded.
type checkpointMirror struct {
	Version int `json:"version"`
	Labels  []struct {
		ID    int  `json:"id"`
		Match bool `json:"match"`
	} `json:"labels"`
}

// FuzzRestoreSession feeds arbitrary bytes to RestoreSession: every input
// must yield ErrCheckpointMismatch or another error, or a session whose
// label log equals exactly what the checkpoint declared — never a panic
// and never a silently-wrong session. Seeds: a valid mid-resolution
// checkpoint, a truncated one, and a version-bumped one.
func FuzzRestoreSession(f *testing.F) {
	w, req, cfg, truth := fuzzFixture(f)

	// Seed 1: a genuine checkpoint taken after one answered batch.
	s, err := humo.NewSession(w, req, cfg)
	if err != nil {
		f.Fatal(err)
	}
	b, err := s.Next(context.Background())
	if err != nil || b.Empty() {
		f.Fatalf("fixture batch: %v %v", b, err)
	}
	ans := make(map[int]bool, len(b.IDs))
	for _, id := range b.IDs {
		ans[id] = truth[id]
	}
	if err := s.Answer(ans); err != nil {
		f.Fatal(err)
	}
	var cp bytes.Buffer
	if err := s.Checkpoint(&cp); err != nil {
		f.Fatal(err)
	}
	s.Cancel()
	valid := cp.Bytes()
	f.Add(valid)

	// Seed 2: the same checkpoint truncated mid-JSON.
	f.Add(valid[:len(valid)/2])

	// Seed 3: a version bump, which must be refused even though the rest
	// matches.
	bumped := bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 2`), 1)
	if bytes.Equal(bumped, valid) {
		f.Fatal("version field not found in checkpoint fixture")
	}
	f.Add(bumped)

	// Seed 4: structurally valid JSON that matches nothing.
	f.Add([]byte(`{"version":1,"method":"base","seed":0,"labels":[{"id":1,"match":true}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := humo.RestoreSession(w, req, cfg, bytes.NewReader(data))
		if err != nil {
			return // refused: the only other acceptable outcome
		}
		defer restored.Cancel()
		// The restore was accepted, so the input had to be a genuine
		// checkpoint for this exact workload and configuration. Guard
		// against the silent-corruption case: the session's label log must
		// be exactly the checkpoint's label list (last entry wins on
		// duplicate ids, as JSON order defines).
		// Decode exactly as RestoreSession does (first JSON value of the
		// stream; trailing bytes ignored).
		var mirror checkpointMirror
		if err := json.NewDecoder(bytes.NewReader(data)).Decode(&mirror); err != nil {
			t.Fatalf("restore accepted bytes that do not even decode: %v", err)
		}
		want := make(map[int]bool, len(mirror.Labels))
		for _, e := range mirror.Labels {
			want[e.ID] = e.Match
		}
		got := restored.Answered()
		if len(got) != len(want) {
			t.Fatalf("restored log has %d entries, checkpoint declared %d", len(got), len(want))
		}
		for id, v := range want {
			if gv, ok := got[id]; !ok || gv != v {
				t.Fatalf("restored label for pair %d = %v,%v; checkpoint said %v", id, gv, ok, v)
			}
		}
	})
}
