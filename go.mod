module humo

go 1.24
