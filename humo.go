package humo

import (
	"humo/internal/core"
	"humo/internal/correct"
	"humo/internal/datagen"
	"humo/internal/fellegi"
	"humo/internal/metrics"
	"humo/internal/oracle"
	"humo/internal/parallel"
	"humo/internal/risk"
	"humo/internal/svm"
)

// Core workload model. See package core for full documentation of the
// underlying types; these aliases form the stable public surface.
type (
	// Pair is one instance pair: an opaque id and its machine metric value.
	Pair = core.Pair
	// Workload is an ER workload partitioned into unit subsets.
	Workload = core.Workload
	// Requirement is the quality requirement (precision Alpha, recall Beta,
	// confidence Theta) of the paper's Definition 1.
	Requirement = core.Requirement
	// Solution is a HUMO division of the workload: subsets [Lo, Hi] go to
	// the human, everything below is machine-unmatch, everything above
	// machine-match.
	Solution = core.Solution
	// Oracle answers match/unmatch per pair id — the human in the loop.
	Oracle = core.Oracle

	// BaseConfig configures the monotonicity-based baseline search.
	BaseConfig = core.BaseConfig
	// SamplingConfig configures the sampling-based searches.
	SamplingConfig = core.SamplingConfig
	// HybridConfig configures the hybrid search.
	HybridConfig = core.HybridConfig
	// RiskConfig configures the risk-aware search (r-HUMO): the sampling
	// configuration of its initial fit, the schedule knobs, the anytime
	// label budget and an optional progress hook.
	RiskConfig = core.RiskConfig
	// RiskScheduleConfig tunes the risk scheduler itself: review-batch
	// size, posterior prior strength, the CVaR-style tail knob and the
	// scoring worker bound.
	RiskScheduleConfig = risk.Config
	// RiskProgress is a point-in-time snapshot of a running risk schedule:
	// the currently certified DH bounds, the unanswered pairs inside them,
	// and the early-stop state.
	RiskProgress = core.RiskProgress

	// CorrectConfig configures the risk-corrected verification search
	// (MethodCorrect): the machine classifier's labels over the workload,
	// the confidence-stratification knobs, the schedule configuration, the
	// anytime label budget and an optional progress hook.
	CorrectConfig = core.CorrectConfig
	// CorrectProgress is a point-in-time snapshot of a running correction:
	// the current precision/recall certificate, verified and remaining pair
	// counts, and the budget state.
	CorrectProgress = core.CorrectProgress
	// CorrectLabel is one machine-classifier verdict: a pair id, its match
	// label and a confidence score (any monotone match-propensity signal —
	// the corrector normalizes the scale away).
	CorrectLabel = correct.Labeled
	// Classifier is the pluggable machine-matcher contract of the corrected
	// search: anything producing a per-pair match label plus a confidence
	// score. The package ships SVMClassifier, FellegiClassifier and
	// LabelMapClassifier adapters.
	Classifier = correct.Classifier
	// SVMClassifier adapts a TrainSVM model as a Classifier: label by
	// decision sign, score by decision value.
	SVMClassifier = correct.SVM
	// FellegiClassifier adapts a FitFellegi model as a Classifier: label by
	// posterior >= 0.5, score by posterior probability.
	FellegiClassifier = correct.Fellegi
	// LabelMapClassifier adapts an externally supplied label set — e.g. a
	// scored label file — as a Classifier.
	LabelMapClassifier = correct.LabelMap

	// SVMModel is a trained linear SVM (weights and bias).
	SVMModel = svm.Model
	// SVMConfig tunes TrainSVM (epochs, learning rate, regularization,
	// class weighting, seed).
	SVMConfig = svm.Config
	// FellegiModel is a fitted Fellegi-Sunter match/unmatch model.
	FellegiModel = fellegi.Model
	// FellegiConfig tunes FitFellegi (similarity levels, EM iteration and
	// tolerance bounds, initial match prior).
	FellegiConfig = fellegi.Config
)

// DefaultSubsetSize is the unit-subset size used when NewWorkload receives 0
// (200 pairs, as in the paper's evaluation).
const DefaultSubsetSize = core.DefaultSubsetSize

// Parallelism. Every concurrency knob in the package follows one convention:
// values <= 0 select the runtime's GOMAXPROCS. SamplingConfig.Workers bounds
// the goroutines of the coherent Gaussian-process variance precompute
// (CoherentAggregation), and cmd/humoexp's -parallel flag bounds both
// concurrent experiments and the repetition fan-out. Every parallel path is
// bit-deterministic: a worker count changes wall-clock time, never results.

// Workers normalizes a worker-count knob: n <= 0 selects GOMAXPROCS,
// anything else is returned unchanged.
func Workers(n int) int { return parallel.Workers(n) }

// Workload and search constructors.

// NewWorkload builds a workload from instance pairs; subsetSize <= 0 selects
// DefaultSubsetSize.
func NewWorkload(pairs []Pair, subsetSize int) (*Workload, error) {
	return core.NewWorkload(pairs, subsetSize)
}

// Base runs the baseline optimization (§V of the paper): valid whenever the
// workload statistically satisfies monotonicity of precision.
func Base(w *Workload, req Requirement, o Oracle, cfg BaseConfig) (Solution, error) {
	return core.BaseSearch(w, req, o, cfg)
}

// AllSampling runs the all-sampling optimization (§VI-A): every unit subset
// is sampled and stratified error margins bound the machine zones.
func AllSampling(w *Workload, req Requirement, o Oracle, cfg SamplingConfig) (Solution, error) {
	return core.AllSamplingSearch(w, req, o, cfg)
}

// PartialSampling runs the partial-sampling optimization (§VI-B,
// Algorithm 1): a Gaussian process interpolates the match-proportion
// function from a small set of sampled subsets.
func PartialSampling(w *Workload, req Requirement, o Oracle, cfg SamplingConfig) (Solution, error) {
	return core.PartialSamplingSearch(w, req, o, cfg)
}

// Hybrid runs the hybrid optimization (§VII): the partial-sampling solution
// re-tightened with the better of the baseline and sampling estimates. It
// never costs more than PartialSampling and is the paper's best performer.
func Hybrid(w *Workload, req Requirement, o Oracle, cfg HybridConfig) (Solution, error) {
	return core.HybridSearch(w, req, o, cfg)
}

// Budgeted runs the inverse, pay-as-you-go optimization: instead of
// enforcing a quality requirement it maximizes the expected F1 under a hard
// human budget (manual inspections, sampling included). No quality
// guarantee is attached to the result.
func Budgeted(w *Workload, budgetPairs int, o Oracle, cfg SamplingConfig) (Solution, error) {
	return core.BudgetedSearch(w, budgetPairs, o, cfg)
}

// RiskAware runs the risk-aware optimization (the r-HUMO refinement,
// Hou et al. 2018): the partial-sampling fit of Hybrid, then a prioritized
// schedule that labels the human zone rarest-risk-first in small batches,
// re-estimating per-subset posteriors from the incoming answers and
// stopping the moment the requirement is provably met. It meets the same
// requirement as the other searches while typically consuming fewer human
// labels; cfg.BudgetPairs turns it into an anytime search (the schedule
// stops at the budget, the returned division still carries the guarantee
// once its DH is labeled).
func RiskAware(w *Workload, req Requirement, o Oracle, cfg RiskConfig) (Solution, error) {
	return core.RiskSearch(w, req, o, cfg)
}

// Correct runs the risk-corrected verification (the third HUMO refinement,
// Chen et al. 2018, arXiv:1805.12502): instead of dividing the workload into
// machine and human zones, a machine classifier labels every pair and human
// effort goes where the classifier is most likely wrong — pairs are grouped
// into confidence strata, per-stratum Beta posteriors track the observed
// classifier error, and verification proceeds riskiest-first in small
// batches, re-estimating after each, until the corrected label set provably
// meets the precision/recall requirement (or cfg.BudgetPairs runs out). The
// returned labels — human answers where verified, classifier labels
// elsewhere — are the resolution; the Solution carries an empty DH and
// exists for cost accounting (do not Resolve it). The schedule is
// bit-identical across runs and worker counts.
func Correct(w *Workload, req Requirement, o Oracle, cfg CorrectConfig) (Solution, []bool, error) {
	return core.CorrectSearch(w, req, o, cfg)
}

// ClassifyAll runs a Classifier over every pair id, fanning the per-pair
// classification over workers goroutines (<= 0 selects GOMAXPROCS; results
// are bit-identical at any value). The returned labels feed
// CorrectConfig.Labels.
func ClassifyAll(ids []int, c Classifier, workers int) ([]CorrectLabel, error) {
	return correct.Assign(ids, c, workers)
}

// TrainSVM trains a linear SVM on feature vectors and match labels with
// deterministic subgradient descent (fixed cfg.Seed => bit-identical model).
func TrainSVM(features [][]float64, labels []bool, cfg SVMConfig) (*SVMModel, error) {
	return svm.Train(features, labels, cfg)
}

// SVMTrainTestSplit deterministically partitions n items into a training
// set of trainSize indices and a test set of the rest: a fixed seed yields
// the same split on every run.
func SVMTrainTestSplit(n, trainSize int, seed int64) (train, test []int, err error) {
	return svm.TrainTestSplit(n, trainSize, seed)
}

// FitFellegi fits a Fellegi-Sunter model to per-attribute similarity
// vectors by unsupervised EM (deterministic initialization => bit-identical
// model for fixed inputs).
func FitFellegi(features [][]float64, cfg FellegiConfig) (*FellegiModel, error) {
	return fellegi.Fit(features, cfg)
}

// Oracles.

type (
	// SimulatedOracle is a perfect human over fixed ground truth, with
	// human-cost accounting.
	SimulatedOracle = oracle.Simulated
	// NoisyOracle flips each answer with a configured probability,
	// memoized per pair.
	NoisyOracle = oracle.Noisy
	// CrowdOracle majority-votes an odd number of noisy workers per pair.
	CrowdOracle = oracle.Crowd
)

// NewSimulatedOracle builds a perfect simulated human over the ground truth
// map (pair id -> is-match).
func NewSimulatedOracle(truth map[int]bool) *SimulatedOracle {
	return oracle.NewSimulated(truth)
}

// Human-cost accounting. Every oracle of this package counts the distinct
// pairs it was asked about — the paper's human-cost metric — and Session
// tracks the same ledger for interactive resolutions (Session.Cost).

// CostReporter is implemented by oracles that account human cost: the
// number of distinct pairs manually inspected so far. SimulatedOracle,
// NoisyOracle, CrowdOracle and OracleFromLabeler all implement it.
type CostReporter interface {
	Cost() int
}

// OracleCost reports o's human cost when the oracle accounts one. The
// second return is false for oracles without cost accounting.
func OracleCost(o Oracle) (int, bool) {
	if c, ok := o.(CostReporter); ok {
		return c.Cost(), true
	}
	return 0, false
}

// Quality metrics.

type (
	// Quality bundles precision, recall and F1.
	Quality = metrics.Quality
	// Confusion is a binary confusion matrix.
	Confusion = metrics.Confusion
)

// Evaluate computes precision/recall/F1 of a labeling against ground truth.
func Evaluate(predicted, truth []bool) (Quality, error) {
	return metrics.Evaluate(predicted, truth)
}

// Evaluation workload generators (the paper's §VIII datasets).

type (
	// LabeledPair couples a pair with its hidden ground-truth label.
	LabeledPair = datagen.LabeledPair
	// LogisticConfig parameterizes the synthetic workload generator (Eq. 22).
	LogisticConfig = datagen.LogisticConfig
	// DSConfig parameterizes the simulated DBLP-Scholar dataset.
	DSConfig = datagen.DSConfig
	// ABConfig parameterizes the simulated Abt-Buy dataset.
	ABConfig = datagen.ABConfig
	// ERDataset is a fully materialized two-table ER workload.
	ERDataset = datagen.ERDataset
)

// Logistic generates a synthetic workload whose match proportion follows the
// paper's Eq. 22 logistic curve with per-subset irregularity Sigma.
func Logistic(cfg LogisticConfig) ([]LabeledPair, error) { return datagen.Logistic(cfg) }

// DSLike generates the simulated DBLP-Scholar workload (easy: matches
// concentrate at high similarity).
func DSLike(cfg DSConfig) (*ERDataset, error) { return datagen.DSLike(cfg) }

// DefaultDSConfig returns the harness configuration for DSLike.
func DefaultDSConfig() DSConfig { return datagen.DefaultDSConfig() }

// ABLike generates the simulated Abt-Buy workload (hard: matches spread to
// medium and low similarities, extreme class imbalance).
func ABLike(cfg ABConfig) (*ERDataset, error) { return datagen.ABLike(cfg) }

// DefaultABConfig returns the harness configuration for ABLike.
func DefaultABConfig() ABConfig { return datagen.DefaultABConfig() }

// Split separates generated labeled pairs into the machine-visible pairs and
// the oracle ground truth.
func Split(pairs []LabeledPair) ([]Pair, map[int]bool) { return datagen.Split(pairs) }

// TruthSlice returns ground truth aligned with a Workload's sorted pair
// positions, for use with Evaluate.
func TruthSlice(pairs []LabeledPair) []bool { return datagen.TruthSlice(pairs) }
